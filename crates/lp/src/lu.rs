//! Sparse LU factorization of simplex basis matrices.
//!
//! The [`LuBasis`](crate::eta::LuBasis) basis representation needs to
//! solve `B·x = b` (ftran) and `Bᵀ·y = c` (btran) against the current
//! basis matrix without ever forming `B⁻¹`. This module produces the
//! factorization `B·Q = L·U` (`Q` a column permutation, row permutation
//! folded into the pivot bookkeeping) by left-looking Gaussian
//! elimination over the basis columns in CSC form:
//!
//! * **Markowitz-flavored ordering** — columns are eliminated in
//!   ascending nonzero count, and the pivot row is chosen among the
//!   rows within [`PIVOT_REL_THRESHOLD`] of the largest magnitude as
//!   the one with the fewest nonzeros in the original basis. This is
//!   the standard lightweight approximation of the full dynamic
//!   Markowitz criterion: it bounds fill-in without maintaining an
//!   active-submatrix count structure, and keeps elimination
//!   deterministic.
//! * **Partial pivoting** — rows far below the column maximum are
//!   never eligible, so the multipliers in `L` stay bounded by
//!   `1 / PIVOT_REL_THRESHOLD` and the factorization cannot amplify a
//!   well-conditioned basis into garbage (the failure mode of the
//!   no-pivoting dense inverse on the degenerate walk3d systems).
//!
//! The factors are stored column-wise as parallel index/value slices so
//! the solves run on the [`qava_linalg::vecops`] gather/scatter kernels:
//! a forward solve scatters one elimination column into the dense
//! right-hand side per step ([`vecops::scatter_axpy`]), a transposed
//! solve gathers one dot product per step ([`vecops::gather_dot`]), and
//! **steps whose pivot entry in the running vector is zero are skipped
//! entirely** — on the sparse entering columns of the synthesis LPs most
//! steps are.

use qava_linalg::vecops;

/// Pivot eligibility: a row qualifies when its magnitude is within this
/// factor of the column maximum. 0.1 is the textbook threshold-pivoting
/// compromise between stability (multipliers ≤ 10) and sparsity freedom.
const PIVOT_REL_THRESHOLD: f64 = 0.1;

/// Absolute singularity cutoff on the pivot magnitude. The session
/// equilibrates the system to unit max-norms before any backend runs, so
/// entries are O(1) and an absolute tolerance is meaningful.
const SINGULAR_TOL: f64 = 1e-11;

/// One stored elimination column: parallel `(row, value)` slices. Shared
/// with the Forrest–Tomlin engine ([`crate::ft`]), which stores its
/// mutable U columns and row-spike etas in the same shape.
#[derive(Debug, Clone, Default)]
pub(crate) struct SparseCol {
    pub(crate) idx: Vec<usize>,
    pub(crate) vals: Vec<f64>,
}

impl SparseCol {
    pub(crate) fn from_entries(mut entries: Vec<(usize, f64)>) -> Self {
        entries.sort_unstable_by_key(|&(i, _)| i);
        SparseCol {
            idx: entries.iter().map(|&(i, _)| i).collect(),
            vals: entries.iter().map(|&(_, v)| v).collect(),
        }
    }

    pub(crate) fn nnz(&self) -> usize {
        self.idx.len()
    }
}

/// A sparse LU factorization of an `m × m` basis matrix.
///
/// Step `k` of the elimination consumed basis column `col_order[k]` and
/// pivoted on original row `pos_row[k]`. `l_cols[k]` holds the unit-
/// lower-triangular multipliers (original row indices, diagonal 1
/// implicit); `u_cols[k]` holds the upper-triangular entries in **pivot
/// position** indexing (all positions < `k`), with the diagonal kept
/// separately in `diag[k]`.
#[derive(Debug, Clone)]
pub(crate) struct LuFactors {
    m: usize,
    pub(crate) col_order: Vec<usize>,
    pub(crate) pos_row: Vec<usize>,
    l_cols: Vec<SparseCol>,
    pub(crate) u_cols: Vec<SparseCol>,
    pub(crate) diag: Vec<f64>,
}

impl LuFactors {
    /// The factorization of the identity basis (the phase-1 artificial
    /// start): empty factors, identity permutations.
    pub(crate) fn identity(m: usize) -> Self {
        LuFactors {
            m,
            col_order: (0..m).collect(),
            pos_row: (0..m).collect(),
            l_cols: vec![SparseCol::default(); m],
            u_cols: vec![SparseCol::default(); m],
            diag: vec![1.0; m],
        }
    }

    /// Stored nonzeros of `L` and `U` (diagonals included) — the fill-in
    /// measure the eta file's refactorization threshold is relative to.
    pub(crate) fn nnz(&self) -> usize {
        self.m
            + self.l_cols.iter().map(SparseCol::nnz).sum::<usize>()
            + self.u_cols.iter().map(SparseCol::nnz).sum::<usize>()
    }

    /// Factorizes the basis given as `m` sparse columns (sorted row
    /// indices, nonzero values). Returns `None` when the matrix is
    /// (numerically) singular — a stale warm-start basis, typically.
    pub(crate) fn factorize(m: usize, cols: &[(Vec<usize>, Vec<f64>)]) -> Option<LuFactors> {
        assert_eq!(cols.len(), m, "factorize: need exactly m basis columns");
        // Static row counts for the Markowitz tie-break.
        let mut row_count = vec![0usize; m];
        for (idx, _) in cols {
            for &r in idx {
                row_count[r] += 1;
            }
        }
        // Column elimination order: ascending nonzero count (stable sort
        // keeps the order deterministic across runs).
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by_key(|&j| cols[j].0.len());

        let mut lu = LuFactors {
            m,
            col_order: Vec::with_capacity(m),
            pos_row: Vec::with_capacity(m),
            l_cols: Vec::with_capacity(m),
            u_cols: Vec::with_capacity(m),
            diag: Vec::with_capacity(m),
        };
        // row -> pivot position, MAX while unpivoted.
        let mut row_pos = vec![usize::MAX; m];
        // Dense workspace + touched-row pattern for one column.
        let mut x = vec![0.0f64; m];
        let mut touched: Vec<usize> = Vec::with_capacity(m);
        let mut is_touched = vec![false; m];

        for &j in &order {
            let (idx, vals) = &cols[j];
            for (&r, &v) in idx.iter().zip(vals) {
                x[r] = v;
                is_touched[r] = true;
                touched.push(r);
            }
            // Left-looking solve L·x = column: apply every prior
            // elimination column in order, skipping steps whose pivot
            // entry is (still) zero — for sparse columns that is the
            // vast majority.
            for t in 0..lu.diag.len() {
                let xt = x[lu.pos_row[t]];
                if xt == 0.0 {
                    continue;
                }
                let lc = &lu.l_cols[t];
                for &r in &lc.idx {
                    if !is_touched[r] {
                        is_touched[r] = true;
                        touched.push(r);
                    }
                }
                vecops::scatter_axpy(-xt, &lc.idx, &lc.vals, &mut x);
            }

            // Threshold partial pivoting over the unpivoted rows, with
            // the static row count as the Markowitz-style tie-break.
            let mut col_max = 0.0f64;
            for &r in &touched {
                if row_pos[r] == usize::MAX {
                    col_max = col_max.max(x[r].abs());
                }
            }
            if col_max <= SINGULAR_TOL {
                return None; // structurally or numerically singular
            }
            let eligible = PIVOT_REL_THRESHOLD * col_max;
            let mut pivot_r = usize::MAX;
            let mut pivot_key = (usize::MAX, usize::MAX);
            for &r in &touched {
                if row_pos[r] == usize::MAX && x[r].abs() >= eligible {
                    let key = (row_count[r], r);
                    if key < pivot_key {
                        pivot_key = key;
                        pivot_r = r;
                    }
                }
            }
            let d = x[pivot_r];

            // Split the solved column: pivoted rows become the U column
            // (position-indexed), unpivoted rows the scaled L column.
            let mut u_entries: Vec<(usize, f64)> = Vec::new();
            let mut l_entries: Vec<(usize, f64)> = Vec::new();
            for &r in &touched {
                let v = x[r];
                // Reset the workspace as we read it out.
                x[r] = 0.0;
                is_touched[r] = false;
                if v == 0.0 || r == pivot_r {
                    continue;
                }
                match row_pos[r] {
                    usize::MAX => l_entries.push((r, v / d)),
                    t => u_entries.push((t, v)),
                }
            }
            touched.clear();

            let k = lu.diag.len();
            row_pos[pivot_r] = k;
            lu.col_order.push(j);
            lu.pos_row.push(pivot_r);
            lu.l_cols.push(SparseCol::from_entries(l_entries));
            lu.u_cols.push(SparseCol::from_entries(u_entries));
            lu.diag.push(d);
        }
        Some(lu)
    }

    /// Applies `L⁻¹` in place, `x` in **row** indexing: the elimination
    /// columns in order, skipping steps whose pivot entry is (still)
    /// zero — the sparse-rhs fast path for sparse entering columns.
    ///
    /// Exposed separately from [`ftran`](Self::ftran) because the
    /// Forrest–Tomlin engine ([`crate::ft`]) keeps `L` frozen between
    /// refactorizations while replacing the U solve with its own
    /// spike-updated factors.
    pub(crate) fn l_solve(&self, x: &mut [f64]) {
        debug_assert_eq!(x.len(), self.m);
        for k in 0..self.m {
            let xk = x[self.pos_row[k]];
            if xk == 0.0 {
                continue;
            }
            let lc = &self.l_cols[k];
            vecops::scatter_axpy(-xk, &lc.idx, &lc.vals, x);
        }
    }

    /// Applies `L⁻ᵀ` in place, `x` in **row** indexing: the transposed
    /// elimination columns in reverse order (gather form). The other
    /// half of the frozen-L hook pair ([`l_solve`](Self::l_solve)).
    pub(crate) fn lt_solve(&self, x: &mut [f64]) {
        debug_assert_eq!(x.len(), self.m);
        for k in (0..self.m).rev() {
            let lc = &self.l_cols[k];
            if !lc.idx.is_empty() {
                x[self.pos_row[k]] -= vecops::gather_dot(&lc.idx, &lc.vals, x);
            }
        }
    }

    /// Forward transformation in place: on entry `x` is the right-hand
    /// side `b` in **row** indexing, on exit the solution of `B·z = b`
    /// in **basis-slot** indexing. `scratch` must have length `m` and
    /// comes back zeroed.
    pub(crate) fn ftran(&self, x: &mut [f64], scratch: &mut Vec<f64>) {
        self.l_solve(x);
        // U solve, backward over pivot positions; the solution component
        // of step k belongs to basis slot `col_order[k]`.
        scratch.resize(self.m, 0.0);
        for k in (0..self.m).rev() {
            let wk = x[self.pos_row[k]] / self.diag[k];
            if wk != 0.0 {
                let uc = &self.u_cols[k];
                for (&t, &v) in uc.idx.iter().zip(&uc.vals) {
                    x[self.pos_row[t]] -= v * wk;
                }
            }
            scratch[self.col_order[k]] = wk;
        }
        x.copy_from_slice(scratch);
        for v in scratch.iter_mut() {
            *v = 0.0;
        }
    }

    /// Backward transformation: solves `Bᵀ·y = c` with `c` in basis-slot
    /// indexing, returning `y` in row indexing — the simplex-multiplier
    /// solve `yᵀ = c_Bᵀ·B⁻¹`.
    pub(crate) fn btran(&self, c: &[f64]) -> Vec<f64> {
        debug_assert_eq!(c.len(), self.m);
        // Uᵀ solve, forward over pivot positions (gather form).
        let mut w = vec![0.0f64; self.m];
        for k in 0..self.m {
            let uc = &self.u_cols[k];
            let s = c[self.col_order[k]] - vecops::gather_dot(&uc.idx, &uc.vals, &w);
            w[k] = s / self.diag[k];
        }
        // Scatter into row indexing, then Lᵀ.
        let mut y = vec![0.0f64; self.m];
        for k in 0..self.m {
            y[self.pos_row[k]] = w[k];
        }
        self.lt_solve(&mut y);
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qava_linalg::Matrix;

    fn cols_of(dense: &Matrix) -> Vec<(Vec<usize>, Vec<f64>)> {
        (0..dense.cols())
            .map(|j| {
                let mut idx = Vec::new();
                let mut vals = Vec::new();
                for i in 0..dense.rows() {
                    if dense[(i, j)] != 0.0 {
                        idx.push(i);
                        vals.push(dense[(i, j)]);
                    }
                }
                (idx, vals)
            })
            .collect()
    }

    fn check_solves(dense: &Matrix) {
        let m = dense.rows();
        let lu = LuFactors::factorize(m, &cols_of(dense)).expect("nonsingular");
        let inv = dense.inverse().expect("nonsingular");
        // ftran against B⁻¹·b for a few right-hand sides (dense and unit).
        let mut scratch = Vec::new();
        for t in 0..=m {
            let b: Vec<f64> = if t < m {
                (0..m).map(|i| if i == t { 1.0 } else { 0.0 }).collect()
            } else {
                (0..m).map(|i| (i as f64) * 0.7 - 1.3).collect()
            };
            let mut x = b.clone();
            lu.ftran(&mut x, &mut scratch);
            let want = inv.mul_vec(&b);
            for (i, (&got, &w)) in x.iter().zip(&want).enumerate() {
                assert!((got - w).abs() < 1e-8, "ftran[{i}]: {got} vs {w}");
            }
            assert!(scratch.iter().all(|&v| v == 0.0), "scratch must come back zeroed");
            // btran against cᵀ·B⁻¹ with the same vector as c.
            let y = lu.btran(&b);
            let want_y = inv.mul_vec_transposed(&b);
            for (i, (&got, &w)) in y.iter().zip(&want_y).enumerate() {
                assert!((got - w).abs() < 1e-8, "btran[{i}]: {got} vs {w}");
            }
        }
    }

    #[test]
    fn identity_factors_are_trivial() {
        let lu = LuFactors::identity(4);
        assert_eq!(lu.nnz(), 4);
        let mut x = vec![1.0, -2.0, 3.0, 0.5];
        let mut scratch = Vec::new();
        lu.ftran(&mut x, &mut scratch);
        assert_eq!(x, vec![1.0, -2.0, 3.0, 0.5]);
        assert_eq!(lu.btran(&x), vec![1.0, -2.0, 3.0, 0.5]);
    }

    #[test]
    fn matches_dense_inverse_on_small_matrices() {
        check_solves(&Matrix::from_rows(vec![vec![2.0]]));
        check_solves(&Matrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]));
        check_solves(&Matrix::from_rows(vec![
            vec![2.0, 1.0, 0.0],
            vec![0.0, 0.0, 3.0],
            vec![1.0, -1.0, 1.0],
        ]));
    }

    #[test]
    fn matches_dense_inverse_on_random_sparse_matrices() {
        // Deterministic LCG so the test needs no rng dependency.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0
        };
        for m in [4usize, 7, 12, 23] {
            for _ in 0..8 {
                let mut rows = vec![vec![0.0; m]; m];
                for (i, row) in rows.iter_mut().enumerate() {
                    // Guaranteed nonsingular: dominant diagonal + sparse
                    // off-diagonal fill.
                    row[i] = 3.0 + next().abs();
                    for (j, v) in row.iter_mut().enumerate() {
                        if j != i && next() > 0.5 {
                            *v = next();
                        }
                    }
                }
                check_solves(&Matrix::from_rows(rows));
            }
        }
    }

    #[test]
    fn permuted_and_rank_deficient_cases() {
        // A pure permutation matrix factorizes (pivoting handles it).
        check_solves(&Matrix::from_rows(vec![
            vec![0.0, 0.0, 1.0],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
        ]));
        // A zero column is structurally singular.
        let singular = Matrix::from_rows(vec![vec![1.0, 0.0], vec![2.0, 0.0]]);
        assert!(LuFactors::factorize(2, &cols_of(&singular)).is_none());
        // Duplicate columns are numerically singular.
        let dup = Matrix::from_rows(vec![vec![1.0, 1.0], vec![2.0, 2.0]]);
        assert!(LuFactors::factorize(2, &cols_of(&dup)).is_none());
    }

    #[test]
    fn fill_in_stays_bounded_on_band_matrix() {
        // Tridiagonal: proper ordering keeps L/U banded, so nnz(LU) must
        // stay linear in m rather than quadratic.
        let m = 40;
        let mut rows = vec![vec![0.0; m]; m];
        for (i, row) in rows.iter_mut().enumerate() {
            row[i] = 4.0;
            if i > 0 {
                row[i - 1] = -1.0;
            }
            if i + 1 < m {
                row[i + 1] = -1.0;
            }
        }
        let dense = Matrix::from_rows(rows);
        let lu = LuFactors::factorize(m, &cols_of(&dense)).unwrap();
        assert!(lu.nnz() <= 4 * m, "band fill-in exploded: {} nonzeros", lu.nnz());
        check_solves(&dense);
    }
}
