//! Compressed-sparse-column storage for LP constraint matrices.
//!
//! The revised simplex ([`crate::revised`]) is column-oriented: pricing
//! computes one dot product per column against the dense simplex
//! multipliers, and the forward transformation needs one column at a
//! time. CSC makes both O(nnz of the column) instead of O(m).

/// A sparse `rows × cols` matrix in compressed-sparse-column layout.
///
/// Within each column the row indices are strictly increasing and the
/// stored values are nonzero.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    vals: Vec<f64>,
}

impl CscMatrix {
    /// Builds from sparse rows `rows[i] = [(col, value), …]`.
    ///
    /// Entries with value exactly `0.0` are dropped; duplicate
    /// coordinates within a row are accumulated.
    pub fn from_sparse_rows(nrows: usize, ncols: usize, rows: &[Vec<(usize, f64)>]) -> Self {
        assert_eq!(rows.len(), nrows, "from_sparse_rows: row count mismatch");
        let mut counts = vec![0usize; ncols + 1];
        for row in rows {
            for &(c, v) in row {
                assert!(c < ncols, "from_sparse_rows: column out of bounds");
                if v != 0.0 {
                    counts[c + 1] += 1;
                }
            }
        }
        for c in 0..ncols {
            counts[c + 1] += counts[c];
        }
        let nnz = counts[ncols];
        let col_ptr = counts;
        let mut row_idx = vec![0usize; nnz];
        let mut vals = vec![0.0f64; nnz];
        let mut cursor = col_ptr.clone();
        for (r, row) in rows.iter().enumerate() {
            for &(c, v) in row {
                if v != 0.0 {
                    let slot = cursor[c];
                    row_idx[slot] = r;
                    vals[slot] = v;
                    cursor[c] += 1;
                }
            }
        }
        // Rows were scanned in increasing order, so each column is sorted;
        // accumulate exact-duplicate coordinates if any slipped in.
        let mut m = CscMatrix { rows: nrows, cols: ncols, col_ptr, row_idx, vals };
        m.coalesce();
        m
    }

    /// Builds from a dense row-major matrix, dropping zeros.
    pub fn from_dense(a: &qava_linalg::Matrix) -> Self {
        let rows: Vec<Vec<(usize, f64)>> = (0..a.rows())
            .map(|i| {
                a.row(i)
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0.0)
                    .map(|(j, &v)| (j, v))
                    .collect()
            })
            .collect();
        CscMatrix::from_sparse_rows(a.rows(), a.cols(), &rows)
    }

    fn coalesce(&mut self) {
        let mut needs = false;
        for j in 0..self.cols {
            let (idx, _) = self.col(j);
            if idx.windows(2).any(|w| w[0] >= w[1]) {
                needs = true;
                break;
            }
        }
        if !needs {
            return;
        }
        let mut col_ptr = vec![0usize; self.cols + 1];
        let mut row_idx = Vec::with_capacity(self.row_idx.len());
        let mut vals = Vec::with_capacity(self.vals.len());
        for j in 0..self.cols {
            let (idx, v) = self.col(j);
            let mut entries: Vec<(usize, f64)> = idx.iter().copied().zip(v.iter().copied()).collect();
            entries.sort_by_key(|&(r, _)| r);
            let mut merged: Vec<(usize, f64)> = Vec::with_capacity(entries.len());
            for (r, val) in entries {
                match merged.last_mut() {
                    Some((lr, lv)) if *lr == r => *lv += val,
                    _ => merged.push((r, val)),
                }
            }
            for (r, val) in merged {
                if val != 0.0 {
                    row_idx.push(r);
                    vals.push(val);
                }
            }
            col_ptr[j + 1] = row_idx.len();
        }
        self.col_ptr = col_ptr;
        self.row_idx = row_idx;
        self.vals = vals;
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Borrows column `j` as parallel `(row_indices, values)` slices.
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        (&self.row_idx[lo..hi], &self.vals[lo..hi])
    }

    /// Dot product of column `j` with a dense vector (the pricing kernel;
    /// unrolled via [`qava_linalg::vecops::gather_dot`]).
    pub fn col_dot(&self, j: usize, x: &[f64]) -> f64 {
        let (idx, vals) = self.col(j);
        qava_linalg::vecops::gather_dot(idx, vals, x)
    }

    /// `out += scale · column_j` (dense accumulation).
    pub fn col_axpy(&self, j: usize, scale: f64, out: &mut [f64]) {
        let (idx, vals) = self.col(j);
        for (&r, &v) in idx.iter().zip(vals) {
            out[r] += scale * v;
        }
    }

    /// Applies `f(row, col, value)` to every stored entry, column-major.
    pub fn for_each(&self, mut f: impl FnMut(usize, usize, f64)) {
        for j in 0..self.cols {
            let (idx, vals) = self.col(j);
            for (&r, &v) in idx.iter().zip(vals) {
                f(r, j, v);
            }
        }
    }

    /// Scales every entry by `row_scale[row] * col_scale[col]` in place.
    pub fn scale(&mut self, row_scale: &[f64], col_scale: &[f64]) {
        for (j, &cs) in col_scale.iter().enumerate().take(self.cols) {
            let lo = self.col_ptr[j];
            let hi = self.col_ptr[j + 1];
            for k in lo..hi {
                self.vals[k] *= row_scale[self.row_idx[k]] * cs;
            }
        }
    }

    /// Structural fingerprint (dimensions and sparsity pattern, not
    /// values) — the warm-start cache key for structurally identical LPs.
    pub fn pattern_hash(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.rows.hash(&mut h);
        self.cols.hash(&mut h);
        self.col_ptr.hash(&mut h);
        self.row_idx.hash(&mut h);
        h.finish()
    }

    /// Materializes the dense representation (tests and the oracle path).
    pub fn to_dense(&self) -> qava_linalg::Matrix {
        let mut m = qava_linalg::Matrix::zeros(self.rows, self.cols);
        self.for_each(|r, c, v| m[(r, c)] += v);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qava_linalg::Matrix;

    #[test]
    fn dense_roundtrip() {
        let d = Matrix::from_rows(vec![
            vec![1.0, 0.0, 2.0],
            vec![0.0, 0.0, 0.0],
            vec![-3.0, 4.0, 0.0],
        ]);
        let s = CscMatrix::from_dense(&d);
        assert_eq!(s.nnz(), 4);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn column_access_sorted() {
        let rows = vec![vec![(1, 5.0)], vec![(0, 2.0), (1, 3.0)]];
        let s = CscMatrix::from_sparse_rows(2, 2, &rows);
        let (idx, vals) = s.col(1);
        assert_eq!(idx, &[0, 1]);
        assert_eq!(vals, &[5.0, 3.0]);
        assert_eq!(s.col_dot(1, &[2.0, 10.0]), 40.0);
    }

    #[test]
    fn duplicate_coordinates_accumulate() {
        let rows = vec![vec![(0, 1.0), (0, 2.0)]];
        let s = CscMatrix::from_sparse_rows(1, 1, &rows);
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.to_dense()[(0, 0)], 3.0);
    }

    #[test]
    fn pattern_hash_ignores_values() {
        let a = CscMatrix::from_sparse_rows(2, 2, &[vec![(0, 1.0)], vec![(1, 2.0)]]);
        let b = CscMatrix::from_sparse_rows(2, 2, &[vec![(0, 9.0)], vec![(1, -4.0)]]);
        let c = CscMatrix::from_sparse_rows(2, 2, &[vec![(1, 1.0)], vec![(0, 2.0)]]);
        assert_eq!(a.pattern_hash(), b.pattern_hash());
        assert_ne!(a.pattern_hash(), c.pattern_hash());
    }
}
