//! Sparse linear expressions over LP variables.

/// Opaque identifier of a variable inside an [`crate::LpBuilder`] model.
///
/// Ids are only meaningful for the builder that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(usize);

impl VarId {
    pub(crate) fn from_index(i: usize) -> Self {
        VarId(i)
    }

    /// Zero-based declaration index of the variable.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A sparse affine expression `Σ cᵢ·xᵢ + k`.
///
/// Built fluently:
///
/// ```
/// use qava_lp::{LinExpr, LpBuilder};
/// let mut lp = LpBuilder::new();
/// let x = lp.add_var("x");
/// let e = LinExpr::new().term(x, 2.0).constant(1.0);
/// assert_eq!(e.eval(&[3.0]), 7.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    terms: Vec<(usize, f64)>,
    constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience constructor for a single `coef · var` term.
    pub fn var(v: VarId, coef: f64) -> Self {
        LinExpr::new().term(v, coef)
    }

    /// Adds `coef · var` (accumulating with any existing coefficient on the
    /// same variable).
    #[must_use]
    pub fn term(mut self, v: VarId, coef: f64) -> Self {
        if coef != 0.0 {
            self.terms.push((v.0, coef));
        }
        self
    }

    /// Adds a constant offset.
    #[must_use]
    pub fn constant(mut self, k: f64) -> Self {
        self.constant += k;
        self
    }

    /// Adds `scale · other` term-wise.
    #[must_use]
    pub fn add_scaled(mut self, other: &LinExpr, scale: f64) -> Self {
        if scale != 0.0 {
            for &(j, c) in &other.terms {
                self.terms.push((j, scale * c));
            }
            self.constant += scale * other.constant;
        }
        self
    }

    /// The constant offset `k`.
    pub fn constant_part(&self) -> f64 {
        self.constant
    }

    /// Evaluates the expression against a dense assignment of all variables.
    ///
    /// # Panics
    ///
    /// Panics if `values` is shorter than the largest referenced variable.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant + self.terms.iter().map(|&(j, c)| c * values[j]).sum::<f64>()
    }

    /// Consumes the expression, returning deduplicated `(column, coefficient)`
    /// pairs and the constant.
    pub(crate) fn into_parts(self) -> (Vec<(usize, f64)>, f64) {
        let mut dedup: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
        for (j, c) in self.terms {
            *dedup.entry(j).or_insert(0.0) += c;
        }
        (dedup.into_iter().filter(|&(_, c)| c != 0.0).collect(), self.constant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId::from_index(i)
    }

    #[test]
    fn eval_matches_terms() {
        let e = LinExpr::new().term(v(0), 2.0).term(v(2), -1.0).constant(5.0);
        assert_eq!(e.eval(&[1.0, 9.0, 3.0]), 4.0);
    }

    #[test]
    fn duplicate_terms_accumulate() {
        let e = LinExpr::new().term(v(0), 2.0).term(v(0), 3.0);
        let (parts, k) = e.into_parts();
        assert_eq!(parts, vec![(0, 5.0)]);
        assert_eq!(k, 0.0);
    }

    #[test]
    fn cancelling_terms_vanish() {
        let e = LinExpr::new().term(v(1), 2.0).term(v(1), -2.0);
        let (parts, _) = e.into_parts();
        assert!(parts.is_empty());
    }

    #[test]
    fn add_scaled_combines() {
        let a = LinExpr::new().term(v(0), 1.0).constant(2.0);
        let b = LinExpr::new().term(v(1), 4.0).constant(1.0);
        // c = x0 + 2 + 0.5·(4·x1 + 1) = x0 + 2·x1 + 2.5
        let c = a.add_scaled(&b, 0.5);
        assert_eq!(c.eval(&[1.0, 2.0]), 7.5);
    }
}
