//! Sparse revised simplex on equilibrated standard form — the
//! [`SparseRevised`](crate::SparseRevised) backend core.
//!
//! The dense tableau ([`crate::simplex`]) updates an `m × (n + m)`
//! tableau on every pivot. The revised method keeps only the `m × m`
//! basis inverse `B⁻¹` and reads the constraint matrix in CSC form
//! ([`crate::csc::CscMatrix`]), so each iteration costs
//! `O(m² + nnz(A))` instead of `O(m·(n + m))` — a large win on the
//! sparse Farkas/Handelman LPs where `nnz(A)` is a few percent of
//! `m·n` — and the working set stays cache-sized.
//!
//! Presolve, equilibration and the warm-start basis cache live in the
//! [`LpSolver`](crate::LpSolver) session ([`crate::solver`]): this module
//! only sees the scaled core system plus an optional warm basis, and
//! reports the solution, the final basis (the session caches it per
//! sparsity pattern) and the pivot count. A warm basis is refactorized
//! (one `m × m` inversion) and — when still primal feasible — skips
//! phase 1 and most phase-2 pivots; an infeasible or singular warm basis
//! falls back to the cold two-phase path, so warm starts never change
//! results, only speed.
//!
//! The hot loops (`B⁻¹` row updates in [`Revised::pivot`], multiplier
//! accumulation, pricing) run on the unrolled
//! [`qava_linalg::vecops`] kernels.

use crate::csc::CscMatrix;
use crate::simplex::MAX_PIVOTS;
use crate::LpError;
use qava_linalg::{vecops, Matrix, EPS};

/// Bland-fallback patience, matching the dense path.
const DEGENERACY_PATIENCE: usize = 40;

/// The working state of a revised simplex run: basis, basis inverse and
/// current basic solution. Artificial columns are virtual unit columns
/// `n ..= n + m - 1`.
struct Revised<'a> {
    a: &'a CscMatrix,
    n: usize,
    m: usize,
    basis: Vec<usize>,
    binv: Matrix,
    xb: Vec<f64>,
    /// `in_basis[j]` for real columns: basic columns are skipped by
    /// pricing. Their exact reduced cost is 0; pricing them anyway can
    /// pick up rounding noise as "improving" and pivot a column onto its
    /// own row forever.
    in_basis: Vec<bool>,
    /// Total pivots performed, for solver-session statistics.
    pivots: usize,
    /// Reusable copy of the pivot row of `B⁻¹` so the rank-one update can
    /// run as slice `axpy`s without aliasing the matrix.
    pivot_row: Vec<f64>,
}

/// Refactorization cadence: rebuilding `B⁻¹` from the basis every so many
/// pivots bounds the error the rank-one updates accumulate.
const REFACTOR_EVERY: usize = 64;

/// Preferred minimum pivot element; see [`Revised::leaving`].
const PIVOT_TOL: f64 = 1e-7;

/// How a simplex phase ended (hard errors go through `Result`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunOutcome {
    /// No entering column: current basis is optimal.
    Optimal,
    /// The feasibility watchdog fired: restart from scratch.
    LostFeasibility,
}

impl<'a> Revised<'a> {
    fn new(a: &'a CscMatrix, basis: Vec<usize>, binv: Matrix, xb: Vec<f64>) -> Self {
        let n = a.cols();
        let m = a.rows();
        let mut in_basis = vec![false; n];
        for &j in &basis {
            if j < n {
                in_basis[j] = true;
            }
        }
        Revised { a, n, m, basis, binv, xb, in_basis, pivots: 0, pivot_row: vec![0.0; m] }
    }

    /// Rebuilds `B⁻¹` and `x_B` from scratch off the current basis,
    /// resetting accumulated update error. Keeps the incremental state on
    /// a (numerically impossible) singular refactorization.
    fn refactor(&mut self, b: &[f64]) {
        let m = self.m;
        let mut bm = Matrix::zeros(m, m);
        for (k, &j) in self.basis.iter().enumerate() {
            if j < self.n {
                let (idx, vals) = self.a.col(j);
                for (&r, &v) in idx.iter().zip(vals) {
                    bm[(r, k)] = v;
                }
            } else {
                bm[(j - self.n, k)] = 1.0;
            }
        }
        if let Some(inv) = bm.inverse() {
            self.binv = inv;
            self.xb = self
                .binv
                .mul_vec(b)
                .into_iter()
                // Degenerate bases put basic variables at 0 whose exact
                // value re-emerges as ±1e-9 noise; snap those to 0 so the
                // ratio test stays non-negative.
                .map(|v| if v.abs() < 1e-7 { 0.0 } else { v })
                .collect();
        }
    }
    /// `B⁻¹ · column_j` (forward transformation). Computed row-wise —
    /// `u_i = Σ_r B⁻¹[i, r]·a[r, j]` is a gather dot against the `i`-th
    /// row of `B⁻¹` — so the row-major matrix is walked contiguously.
    fn ftran(&self, j: usize) -> Vec<f64> {
        let m = self.m;
        if j >= self.n {
            let r = j - self.n;
            return (0..m).map(|i| self.binv[(i, r)]).collect();
        }
        let (idx, vals) = self.a.col(j);
        (0..m).map(|i| vecops::gather_dot(idx, vals, self.binv.row(i))).collect()
    }

    /// Simplex multipliers `yᵀ = c_Bᵀ B⁻¹` for the given full cost
    /// vector (`costs[j]` for real columns, `art_cost` for artificials).
    fn multipliers(&self, costs: &[f64], art_cost: f64) -> Vec<f64> {
        let m = self.m;
        let mut y = vec![0.0; m];
        for i in 0..m {
            let bj = self.basis[i];
            let cb = if bj < self.n { costs[bj] } else { art_cost };
            if cb != 0.0 {
                vecops::axpy(cb, self.binv.row(i), &mut y);
            }
        }
        y
    }

    /// Objective value `c_B · x_B`.
    fn objective(&self, costs: &[f64], art_cost: f64) -> f64 {
        self.basis
            .iter()
            .zip(&self.xb)
            .map(|(&bj, &v)| if bj < self.n { costs[bj] * v } else { art_cost * v })
            .sum()
    }

    /// Most-negative (Dantzig) or lowest-index (Bland) entering column
    /// with reduced cost below `-tol`; basic columns and artificials
    /// never enter.
    fn entering(&self, costs: &[f64], y: &[f64], bland: bool, tol: f64) -> Option<usize> {
        let mut best: Option<usize> = None;
        let mut best_val = -tol;
        for (j, &cj) in costs.iter().enumerate().take(self.n) {
            if self.in_basis[j] {
                continue;
            }
            let d = cj - self.a.col_dot(j, y);
            if d < best_val {
                if bland {
                    return Some(j);
                }
                best_val = d;
                best = Some(j);
            }
        }
        best
    }

    /// Minimum-ratio test on direction `u`; ties break toward the lowest
    /// basis index under Bland, largest pivot element otherwise
    /// (mirroring the dense path). Basic values that drifted slightly
    /// negative are treated as 0 so the ratio test never goes negative.
    ///
    /// Two passes on the pivot-element threshold: pivots below
    /// `PIVOT_TOL` amplify update error catastrophically (dividing the
    /// pivot row by a near-zero), so eligibility first requires a
    /// healthy element and only falls back to the loose tolerance when
    /// no healthy row exists. Skipping a tiny-pivot row can leave it
    /// `O(PIVOT_TOL·θ)` negative — the feasibility check at the next
    /// refactorization is the backstop.
    fn leaving(&self, u: &[f64], bland: bool) -> Option<usize> {
        self.leaving_with_tol(u, bland, PIVOT_TOL)
            .or_else(|| self.leaving_with_tol(u, bland, EPS))
    }

    fn leaving_with_tol(&self, u: &[f64], bland: bool, tol: f64) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.m {
            if u[i] > tol {
                let ratio = self.xb[i].max(0.0) / u[i];
                let better = match best {
                    None => true,
                    Some((bi, br)) => {
                        ratio < br - 1e-12
                            || (ratio < br + 1e-12
                                && if bland {
                                    self.basis[i] < self.basis[bi]
                                } else {
                                    u[i] > u[bi]
                                })
                    }
                };
                if better {
                    best = Some((i, ratio));
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Pivots: column `col` enters, the basic variable of `row` leaves.
    /// The `B⁻¹` rank-one update runs as one `axpy` per row against a
    /// snapshot of the scaled pivot row.
    fn pivot(&mut self, row: usize, col: usize, u: &[f64]) {
        let m = self.m;
        debug_assert!(u[row].abs() > EPS, "pivot on (near-)zero element");
        self.pivots += 1;
        let leaving = self.basis[row];
        if leaving < self.n {
            self.in_basis[leaving] = false;
        }
        self.in_basis[col] = true;
        let inv = 1.0 / u[row];
        for v in self.binv.row_mut(row) {
            *v *= inv;
        }
        self.xb[row] *= inv;
        self.pivot_row.copy_from_slice(self.binv.row(row));
        for (i, &f) in u.iter().enumerate().take(m) {
            if i != row && f.abs() > EPS {
                vecops::axpy(-f, &self.pivot_row, self.binv.row_mut(i));
                self.xb[i] -= f * self.xb[row];
                if self.xb[i].abs() < 1e-12 {
                    self.xb[i] = 0.0;
                }
            }
        }
        self.basis[row] = col;
    }

    /// Runs simplex iterations to optimality for the given costs.
    ///
    /// Robustness measures on top of the textbook loop:
    ///
    /// * **Sticky Bland** — after `DEGENERACY_PATIENCE` non-improving
    ///   pivots the rule switches to Bland and *stays* there; flipping
    ///   back to Dantzig on a noise-level objective change can re-enter
    ///   the same degenerate cycle.
    /// * **Verified unboundedness** — an unbounded verdict reached from
    ///   incrementally-updated state is only trusted after a fresh
    ///   refactorization reproduces it; `B⁻¹` drift must never turn a
    ///   bounded LP into an "unbounded" one.
    /// * **Feasibility watchdog** — every refactorization recomputes
    ///   `x_B` exactly; if it has gone meaningfully negative the update
    ///   error has corrupted the trajectory, and the caller restarts the
    ///   solve from scratch ([`RunOutcome::LostFeasibility`]) instead of
    ///   grinding at a poisoned vertex.
    fn run(
        &mut self,
        costs: &[f64],
        art_cost: f64,
        b: &[f64],
        force_bland: bool,
    ) -> Result<RunOutcome, LpError> {
        let b_norm = b.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()));
        let feas_tol = 1e-6 * (1.0 + b_norm);
        let mut stalled = 0usize;
        let mut bland = force_bland;
        let mut just_refactored = false;
        for it in 0..MAX_PIVOTS {
            if it > 0 && it % REFACTOR_EVERY == 0 && !just_refactored {
                self.refactor(b);
                if self.xb.iter().any(|&v| v < -feas_tol) {
                    return Ok(RunOutcome::LostFeasibility);
                }
            }
            bland = bland || stalled >= DEGENERACY_PATIENCE;
            let y = self.multipliers(costs, art_cost);
            let Some(col) = self.entering(costs, &y, bland, EPS) else {
                return Ok(RunOutcome::Optimal);
            };
            let u = self.ftran(col);
            let pivoted = if let Some(row) = self.leaving(&u, bland) {
                Some((row, col, u))
            } else {
                // No pivotable row. Equality-heavy systems leave columns
                // whose reduced cost is barely past the tolerance from
                // elimination noise; re-price against a much stricter
                // threshold before considering an unbounded ray (the
                // dense oracle does the same).
                match self.entering(costs, &y, bland, 1e-6) {
                    None => return Ok(RunOutcome::Optimal),
                    Some(col2) => {
                        let u2 = self.ftran(col2);
                        match self.leaving(&u2, bland) {
                            Some(row2) => Some((row2, col2, u2)),
                            None if just_refactored => return Err(LpError::Unbounded),
                            None => {
                                // Re-derive the verdict from fresh state;
                                // the watchdog applies here too.
                                self.refactor(b);
                                if self.xb.iter().any(|&v| v < -feas_tol) {
                                    return Ok(RunOutcome::LostFeasibility);
                                }
                                just_refactored = true;
                                None
                            }
                        }
                    }
                }
            };
            let Some((row, col, u)) = pivoted else { continue };
            let before = self.objective(costs, art_cost);
            self.pivot(row, col, &u);
            just_refactored = false;
            stalled = if (self.objective(costs, art_cost) - before).abs() <= 1e-12 {
                stalled + 1
            } else {
                0
            };
        }
        Err(LpError::PivotLimit)
    }

    /// Extracts the solution over the real columns.
    fn solution(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        for (i, &bj) in self.basis.iter().enumerate() {
            if bj < self.n {
                x[bj] = self.xb[i];
            }
        }
        x
    }
}

/// Dense inverse of the basis matrix assembled from CSC columns;
/// `None` when the basis is singular (stale warm start).
fn basis_inverse(a: &CscMatrix, basis: &[usize]) -> Option<Matrix> {
    let m = a.rows();
    let mut bm = Matrix::zeros(m, m);
    for (k, &j) in basis.iter().enumerate() {
        let (idx, vals) = a.col(j);
        for (&r, &v) in idx.iter().zip(vals) {
            bm[(r, k)] = v;
        }
    }
    bm.inverse()
}

/// Outcome of a revised-simplex core solve, reported back to the
/// [`LpSolver`](crate::LpSolver) session.
pub(crate) struct CoreOutcome {
    /// Solution over the real columns.
    pub x: Vec<f64>,
    /// Final basis (cached by the session when artificial-free).
    pub basis: Vec<usize>,
    /// Pivots spent, including failed warm-start and watchdog-restart
    /// attempts.
    pub pivots: usize,
    /// The supplied warm basis was accepted and ran to optimality.
    pub warm_start_used: bool,
}

/// Two-phase (or warm-started) revised simplex on an equilibrated
/// system.
pub(crate) fn solve_equilibrated(
    costs: &[f64],
    a: &CscMatrix,
    b: &[f64],
    warm: Option<&[usize]>,
) -> Result<CoreOutcome, LpError> {
    let m = a.rows();
    let n = a.cols();
    let mut pivots = 0usize;
    if m == 0 {
        return if costs.iter().any(|&c| c < -EPS) {
            Err(LpError::Unbounded)
        } else {
            Ok(CoreOutcome { x: vec![0.0; n], basis: Vec::new(), pivots, warm_start_used: false })
        };
    }

    // ---- Warm start: refactorize the cached basis; use it if primal
    // feasible. A failed warm start costs one m×m inversion. Anything
    // short of a clean optimum — lost feasibility, a pivot-limit grind
    // on a stale degenerate basis — falls through to the cold path, so
    // caching can never change a result, only its speed. (Infeasible
    // cannot arise here: the warm basis is primal feasible by check;
    // Unbounded is a verified verdict and is returned.)
    if let Some(basis) = warm {
        if basis.len() == m && basis.iter().all(|&j| j < n) {
            if let Some(binv) = basis_inverse(a, basis) {
                let xb = binv.mul_vec(b);
                if xb.iter().all(|&v| v >= -1e-9) {
                    let xb = xb.into_iter().map(|v| v.max(0.0)).collect();
                    let mut state = Revised::new(a, basis.to_vec(), binv, xb);
                    let run = state.run(costs, 0.0, b, false);
                    pivots += state.pivots;
                    match run {
                        Ok(RunOutcome::Optimal) => {
                            return Ok(CoreOutcome {
                                x: state.solution(),
                                basis: state.basis,
                                pivots,
                                warm_start_used: true,
                            });
                        }
                        Ok(RunOutcome::LostFeasibility) | Err(LpError::PivotLimit) => {}
                        Err(e) => return Err(e),
                    }
                }
            }
        }
    }

    // Cold two-phase; retried once in all-Bland mode if the feasibility
    // watchdog fires (pathological conditioning) — or if the Dantzig
    // attempt ground into the pivot limit: the pathological walk3d-style
    // LPs can cycle for tens of thousands of degenerate pivots under
    // Dantzig pricing, while Bland's rule terminates by construction.
    match cold_two_phase(costs, a, b, false, &mut pivots) {
        Ok(Some((x, basis))) => {
            return Ok(CoreOutcome { x, basis, pivots, warm_start_used: false })
        }
        Ok(None) | Err(LpError::PivotLimit) => {}
        Err(e) => return Err(e),
    }
    match cold_two_phase(costs, a, b, true, &mut pivots)? {
        Some((x, basis)) => Ok(CoreOutcome { x, basis, pivots, warm_start_used: false }),
        None => Err(LpError::PivotLimit),
    }
}

/// Textbook two-phase solve. `Ok(None)` means the feasibility watchdog
/// fired and the caller should retry more conservatively.
#[allow(clippy::type_complexity)]
fn cold_two_phase(
    costs: &[f64],
    a: &CscMatrix,
    b: &[f64],
    force_bland: bool,
    pivots: &mut usize,
) -> Result<Option<(Vec<f64>, Vec<usize>)>, LpError> {
    let m = a.rows();
    let n = a.cols();

    // ---- Phase 1: artificial identity basis, minimize their sum. ----
    let mut state = Revised::new(a, (n..n + m).collect(), Matrix::identity(m), b.to_vec());
    let phase1_costs = vec![0.0; n];
    let phase1 = match state.run(&phase1_costs, 1.0, b, force_bland) {
        Ok(outcome) => outcome,
        Err(e) => {
            *pivots += state.pivots;
            return Err(e);
        }
    };
    if phase1 == RunOutcome::LostFeasibility {
        *pivots += state.pivots;
        return Ok(None);
    }
    let b_norm = b.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()));
    if state.objective(&phase1_costs, 1.0) > 1e-7 * (1.0 + b_norm) {
        *pivots += state.pivots;
        return Err(LpError::Infeasible);
    }

    // Drive lingering artificials out of the basis where possible; rows
    // where no real column has a nonzero in B⁻¹A are redundant and keep
    // their artificial basic at value 0 (it can never re-enter).
    for i in 0..m {
        if state.basis[i] >= n {
            let row_i: Vec<f64> = state.binv.row(i).to_vec();
            let found = (0..n).find(|&j| state.a.col_dot(j, &row_i).abs() > 1e-7);
            if let Some(j) = found {
                let u = state.ftran(j);
                state.pivot(i, j, &u);
            }
        }
    }

    // ---- Phase 2: real costs. Artificials cannot re-enter: `entering`
    // only prices real columns. ----
    let phase2 = state.run(costs, 0.0, b, force_bland);
    *pivots += state.pivots;
    if phase2? == RunOutcome::LostFeasibility {
        return Ok(None);
    }
    Ok(Some((state.solution(), state.basis)))
}

#[cfg(test)]
mod tests {
    use crate::presolve::StdRows;
    use crate::{BackendChoice, LpError, LpSolver};

    fn rows_of(dense: Vec<Vec<f64>>) -> Vec<Vec<(usize, f64)>> {
        dense
            .into_iter()
            .map(|r| r.iter().enumerate().filter(|(_, &v)| v != 0.0).map(|(j, &v)| (j, v)).collect())
            .collect()
    }

    fn solve_std_rows(lp: StdRows) -> Result<Vec<f64>, LpError> {
        LpSolver::with_choice(BackendChoice::Sparse).solve_std_rows(lp)
    }

    fn solve(costs: Vec<f64>, rows: Vec<Vec<f64>>, b: Vec<f64>) -> Result<Vec<f64>, LpError> {
        let ncols = costs.len();
        solve_std_rows(StdRows { costs, rows: rows_of(rows), b, ncols })
    }

    #[test]
    fn matches_dense_on_textbook_lp() {
        // min −x1 − x2 s.t. x1 + x2 + s = 1.
        let x = solve(vec![-1.0, -1.0, 0.0], vec![vec![1.0, 1.0, 1.0]], vec![1.0]).unwrap();
        assert!((x[0] + x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_and_unbounded() {
        // x0 = 1 and x0 = 2 (after pattern dedup: conflicting duplicates).
        let r = solve(vec![0.0], vec![vec![1.0], vec![1.0]], vec![1.0, 2.0]);
        assert_eq!(r.unwrap_err(), LpError::Infeasible);
        // min −x with no constraints on x.
        let r = solve(vec![-1.0], vec![], vec![]);
        assert_eq!(r.unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn warm_start_reuses_basis() {
        // Same pattern solved twice with nearby numbers in ONE session;
        // the second solve must produce the same optimum through the warm
        // path, and the session must record the cache hit.
        let mut solver = LpSolver::with_choice(BackendChoice::Sparse);
        for rhs in [1.0, 1.1] {
            let x = solver
                .solve_std_rows(StdRows {
                    costs: vec![-1.0, -2.0, 0.0, 0.0],
                    rows: rows_of(vec![vec![1.0, 1.0, 1.0, 0.0], vec![1.0, -1.0, 0.0, 1.0]]),
                    b: vec![rhs, 0.5],
                    ncols: 4,
                })
                .unwrap();
            let obj = -x[0] - 2.0 * x[1];
            let expect = -2.0 * rhs;
            assert!((obj - expect).abs() < 1e-7, "rhs {rhs}: got {obj}, want {expect}");
        }
        assert_eq!(solver.stats().warm_start_hits, 1, "second solve warm-starts");
    }


    #[test]
    fn polylow_cycling_repro() {
        let costs = vec![-1.0, 1.0, -1.0, 1.0, -1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let b = vec![-0.0, -0.0, -0.0, 0.0009994998332499509, -0.0, -0.0, -0.0, -0.0, -0.0, -0.0];
        let rows: Vec<Vec<(usize, f64)>> = vec![
            vec![(4, -1.0), (5, 1.0), (6, 1.0), (7, -1.0), (8, -1.0), (9, -1000.0), (10, -100.0), (11, -1000000.0), (12, -100000.0), (13, -10000.0)],
            vec![(2, -1.0), (3, 1.0), (9, -1.0), (10, 1.0), (11, -2000.0), (12, 900.0), (13, 200.0)],
            vec![(0, -1.0), (1, 1.0), (11, -1.0), (12, 1.0), (13, -1.0)],
            vec![(0, 0.999), (1, -0.999), (2, 0.49949999999999994), (3, -0.49949999999999994), (14, -1.0), (15, -1000.0), (16, -100.0), (17, -99.0), (18, -1000000.0), (19, -100000.0), (20, -99000.0), (21, -10000.0), (22, -9900.0), (23, -9801.0)],
            vec![(0, 0.9989999999999999), (1, -0.9989999999999999), (15, -1.0), (16, 1.0), (17, 1.0), (18, -2000.0), (19, 900.0), (20, 901.0), (21, 200.0), (22, 199.0), (23, 198.0)],
            vec![(18, -1.0), (19, 1.0), (20, 1.0), (21, -1.0), (22, -1.0), (23, -1.0)],
            vec![(4, -1.0), (5, 1.0), (24, -1.0), (25, -1000.0), (26, -100.0), (27, 100.0), (28, -1000000.0), (29, -100000.0), (30, 100000.0), (31, -10000.0), (32, 10000.0), (33, -10000.0)],
            vec![(2, -1.0), (3, 1.0), (25, -1.0), (26, 1.0), (27, -1.0), (28, -2000.0), (29, 900.0), (30, -900.0), (31, 200.0), (32, -200.0), (33, 200.0)],
            vec![(0, -1.0), (1, 1.0), (28, -1.0), (29, 1.0), (30, -1.0), (31, -1.0), (32, 1.0), (33, -1.0)],
            vec![(0, 1.0), (1, -1.0), (2, 1.0), (3, -1.0), (4, 1.0), (5, -1.0), (34, 1.0)],
        ];
        let r = solve_std_rows(StdRows { costs, rows, b, ncols: 35 });
        assert!(r.is_ok(), "got {r:?}");
    }

    #[test]
    fn redundant_zero_row_survives() {
        // Duplicate rows are presolved away; the optimum is unchanged.
        let x = solve(
            vec![1.0, 0.0],
            vec![vec![1.0, 1.0], vec![2.0, 2.0]],
            vec![1.0, 2.0],
        )
        .unwrap();
        assert!((x[0] + x[1] - 1.0).abs() < 1e-9);
        assert!(x[0].abs() < 1e-9);
    }
}
