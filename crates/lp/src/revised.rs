//! Sparse revised simplex on equilibrated standard form — the core
//! behind both the [`SparseRevised`](crate::SparseRevised) and the
//! LU-backed [`LuSimplex`](crate::LuSimplex) backends.
//!
//! The dense tableau ([`crate::simplex`]) updates an `m × (n + m)`
//! tableau on every pivot. The revised method keeps only a compact
//! representation of the basis and reads the constraint matrix in CSC
//! form ([`crate::csc::CscMatrix`]). *Which* representation is the
//! [`BasisRepr`] abstraction:
//!
//! * [`DenseInverse`] — the explicit `m × m` inverse with rank-one row
//!   updates: O(m²) per pivot, one O(m³) inversion per refactorization.
//!   Unbeatable constant factor on small bases; this is the `sparse`
//!   backend.
//! * [`LuBasis`](crate::eta::LuBasis) — sparse LU factors
//!   ([`crate::lu`]) plus a product-form eta file ([`crate::eta`]):
//!   O(nnz) per pivot, solves in O(nnz of the factors), refactorization
//!   driven by eta-count/fill-in/accuracy thresholds instead of a fixed
//!   period. This is the `lu` backend, and the representation of choice
//!   for the large sparse Handelman/Farkas systems.
//!
//! The simplex logic itself — two-phase structure, Dantzig pricing with
//! the sticky-Bland anti-cycling fallback, the minimum-ratio test, the
//! feasibility watchdog — is generic over the representation, so both
//! backends share one audited pivoting loop and the differential
//! property tests exercise the exact code that ships.
//!
//! Presolve, equilibration and the warm-start basis cache live in the
//! [`LpSolver`](crate::LpSolver) session ([`crate::solver`]): this module
//! only sees the scaled core system plus an optional warm basis, and
//! reports the solution, the final basis (the session caches it per
//! sparsity pattern), the pivot count, and the robustness-path counters
//! (feasibility-watchdog restarts, all-Bland retries) that
//! [`LpStats`](crate::LpStats) exposes. A warm basis is refactorized and
//! — when still primal feasible — skips phase 1 and most phase-2 pivots;
//! an infeasible or singular warm basis falls back to the cold two-phase
//! path, so warm starts never change results, only speed.
//!
//! The hot loops run on the unrolled [`qava_linalg::vecops`] kernels.

use crate::bg::BgBasis;
use crate::csc::CscMatrix;
use crate::eta::LuBasis;
use crate::faults::{self, Site};
use crate::ft::FtBasis;
use crate::simplex::MAX_PIVOTS;
use crate::LpError;
use qava_linalg::{vecops, Matrix, EPS};

/// Bland-fallback patience, matching the dense path.
const DEGENERACY_PATIENCE: usize = 40;

/// A pluggable basis-inverse engine for the revised simplex.
///
/// Implementations maintain whatever stands in for `B⁻¹` — an explicit
/// inverse, LU factors plus an eta file — and answer the four queries
/// the simplex loop needs: forward transformation (`B⁻¹·a_j`), backward
/// transformation (`c_Bᵀ·B⁻¹`), single rows of `B⁻¹`, and the rank-one
/// basis-exchange update.
pub(crate) trait BasisRepr {
    /// The representation of the all-artificial identity basis (the
    /// phase-1 starting point).
    fn identity(m: usize) -> Self
    where
        Self: Sized;

    /// Rebuilds the representation from scratch for the given basis
    /// (artificial columns are `a.cols()..`, stored as unit columns).
    /// Returns `false` — leaving the previous state untouched — when the
    /// basis matrix is singular.
    fn refactor(&mut self, a: &CscMatrix, n: usize, basis: &[usize]) -> bool;

    /// `B⁻¹ · v` for a sparse column `v` given as parallel
    /// `(indices, values)` slices.
    fn ftran_col(&self, idx: &[usize], vals: &[f64]) -> Vec<f64>;

    /// `B⁻¹ · rhs` for a dense right-hand side.
    fn ftran_dense(&self, rhs: &[f64]) -> Vec<f64>;

    /// `c_Bᵀ · B⁻¹` for a dense basic-cost vector.
    fn btran_dense(&self, cb: &[f64]) -> Vec<f64>;

    /// Row `i` of `B⁻¹` (equivalently `eᵢᵀ·B⁻¹`).
    fn binv_row(&self, i: usize) -> Vec<f64>;

    /// Applies the basis exchange: the variable at `row` leaves and the
    /// column with ftran'd direction `u` enters. `support` lists the
    /// indices `i` with `|u[i]| > EPS` in increasing order, so sparse
    /// directions only touch their own rows.
    ///
    /// `col_idx`/`col_vals` are the entering column itself (sparse, row
    /// indexed) — the hook the Forrest–Tomlin representation needs: its
    /// column replacement works on the *partially* transformed spike
    /// `E·L⁻¹·a`, which it derives from the raw column directly rather
    /// than un-solving `u` back through U (a round trip that amplifies
    /// error by the condition of U — enough, on the degenerate coupon
    /// systems, to steer the shared pivot loop into a singular basis).
    /// The dense-inverse and eta-file engines ignore it.
    fn update(
        &mut self,
        row: usize,
        u: &[f64],
        support: &[usize],
        col_idx: &[usize],
        col_vals: &[f64],
    );

    /// Whether the accumulated updates warrant a refactorization now
    /// (`iteration` is the simplex loop counter; the dense inverse uses
    /// a fixed period, the LU/eta engine its own thresholds).
    fn should_refactor(&self, iteration: usize) -> bool;

    /// Whether an optimality verdict reached from incrementally-updated
    /// state may be returned as-is, or must first be reproduced from a
    /// fresh refactorization. The dense inverse trusts its rank-one
    /// updates between the fixed-period refactorizations (the historical
    /// behavior, bounded by the feasibility watchdog); the eta file does
    /// not — its product-form updates can drift `x_B` and the pricing
    /// multipliers past the optimality tolerance on ill-scaled systems,
    /// silently corrupting the reported solution (see
    /// `tests/drift_regression.rs`).
    fn trusts_incremental_optimal(&self) -> bool;

    /// Cumulative incremental-update stability accounting since the
    /// engine was created. [`RunTelemetry::absorb`] polls it exactly
    /// once per run state, and every run builds its engine fresh from
    /// [`identity`](Self::identity), so engines report lifetime totals
    /// and refactorizations must *not* reset them. Engines without
    /// incremental stability accounting keep the all-zero default.
    fn stability(&self) -> UpdateStability {
        UpdateStability::default()
    }
}

/// Stability counters of an incremental basis-update engine — the
/// telemetry the Bartels–Golub/Forrest–Tomlin comparison runs on (see
/// [`BasisRepr::stability`]).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct UpdateStability {
    /// Updates whose determinant-identity cross-check disagreed with
    /// the eliminated diagonal — each schedules a refactorization.
    pub(crate) accuracy_refactors: usize,
    /// Bartels–Golub row interchanges performed (0 for every other
    /// engine).
    pub(crate) interchanges: usize,
    /// Max spike-pivot growth factor observed across updates: peak
    /// chased-row magnitude over its magnitude on entry.
    pub(crate) max_growth: f64,
}

/// Sparse entries of basis slot `bj`: the CSC column for real columns,
/// the virtual unit column for artificials (`n..`). The one encoding of
/// the artificial-column convention, shared by every
/// [`BasisRepr::refactor`] implementation — backend parity depends on
/// both representations assembling identical basis matrices.
pub(crate) fn basis_col(a: &CscMatrix, n: usize, bj: usize) -> (Vec<usize>, Vec<f64>) {
    if bj < n {
        let (idx, vals) = a.col(bj);
        (idx.to_vec(), vals.to_vec())
    } else {
        (vec![bj - n], vec![1.0])
    }
}

/// Refactorization cadence of [`DenseInverse`]: rebuilding `B⁻¹` from
/// the basis every so many iterations bounds the error the rank-one
/// updates accumulate.
const REFACTOR_EVERY: usize = 64;

/// Preferred minimum pivot element; see [`Revised::leaving`].
const PIVOT_TOL: f64 = 1e-7;

/// The explicit dense-inverse basis representation (the original
/// revised-simplex engine, still the best fit for small/dense bases).
pub(crate) struct DenseInverse {
    binv: Matrix,
    /// Reusable copy of the pivot row of `B⁻¹` so the rank-one update can
    /// run as slice `axpy`s without aliasing the matrix.
    pivot_row: Vec<f64>,
}

impl BasisRepr for DenseInverse {
    fn identity(m: usize) -> Self {
        DenseInverse { binv: Matrix::identity(m), pivot_row: vec![0.0; m] }
    }

    fn refactor(&mut self, a: &CscMatrix, n: usize, basis: &[usize]) -> bool {
        let m = a.rows();
        let mut bm = Matrix::zeros(m, m);
        for (k, &j) in basis.iter().enumerate() {
            let (idx, vals) = basis_col(a, n, j);
            for (r, v) in idx.into_iter().zip(vals) {
                bm[(r, k)] = v;
            }
        }
        match bm.inverse() {
            Some(inv) => {
                self.binv = inv;
                true
            }
            None => false,
        }
    }

    /// Computed row-wise — `u_i = Σ_r B⁻¹[i, r]·v_r` is a gather dot
    /// against the `i`-th row of `B⁻¹` — so the row-major matrix is
    /// walked contiguously and only the column's nonzeros are read.
    fn ftran_col(&self, idx: &[usize], vals: &[f64]) -> Vec<f64> {
        (0..self.binv.rows()).map(|i| vecops::gather_dot(idx, vals, self.binv.row(i))).collect()
    }

    fn ftran_dense(&self, rhs: &[f64]) -> Vec<f64> {
        self.binv.mul_vec(rhs)
    }

    fn btran_dense(&self, cb: &[f64]) -> Vec<f64> {
        let m = self.binv.rows();
        let mut y = vec![0.0; m];
        for (i, &c) in cb.iter().enumerate() {
            if c != 0.0 {
                vecops::axpy(c, self.binv.row(i), &mut y);
            }
        }
        y
    }

    fn binv_row(&self, i: usize) -> Vec<f64> {
        self.binv.row(i).to_vec()
    }

    /// The `B⁻¹` rank-one update runs as one `axpy` per support row
    /// against a snapshot of the scaled pivot row.
    fn update(
        &mut self,
        row: usize,
        u: &[f64],
        support: &[usize],
        _col_idx: &[usize],
        _col_vals: &[f64],
    ) {
        let inv = 1.0 / u[row];
        for v in self.binv.row_mut(row) {
            *v *= inv;
        }
        self.pivot_row.copy_from_slice(self.binv.row(row));
        for &i in support {
            if i != row {
                vecops::axpy(-u[i], &self.pivot_row, self.binv.row_mut(i));
            }
        }
    }

    fn should_refactor(&self, iteration: usize) -> bool {
        iteration.is_multiple_of(REFACTOR_EVERY)
    }

    fn trusts_incremental_optimal(&self) -> bool {
        true
    }
}

/// The working state of a revised simplex run: basis, basis
/// representation and current basic solution. Artificial columns are
/// virtual unit columns `n ..= n + m - 1`.
struct Revised<'a, R: BasisRepr> {
    a: &'a CscMatrix,
    n: usize,
    m: usize,
    basis: Vec<usize>,
    repr: R,
    xb: Vec<f64>,
    /// `in_basis[j]` for real columns: basic columns are skipped by
    /// pricing. Their exact reduced cost is 0; pricing them anyway can
    /// pick up rounding noise as "improving" and pivot a column onto its
    /// own row forever.
    in_basis: Vec<bool>,
    /// Total pivots performed, for solver-session statistics.
    pivots: usize,
    /// Watchdog causes observed by this run, split for
    /// [`LpStats`](crate::LpStats): refactorization failed on a singular
    /// basis where incremental state must not be trusted…
    wd_singular: usize,
    /// …or a refactorization exposed an infeasible (negative) `x_B`.
    wd_infeasible: usize,
    /// When present, every pivot is recorded as `(entering column,
    /// leaving slot)` — the metamorphic pivot-sequence tests compare the
    /// FT and eta engines step by step through this. `None` on every
    /// production path (one branch per pivot, no allocation).
    trace: Option<Vec<(usize, usize)>>,
}

/// How a simplex phase ended (hard errors go through `Result`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunOutcome {
    /// No entering column: current basis is optimal.
    Optimal,
    /// The feasibility watchdog fired: restart from scratch.
    LostFeasibility,
}

impl<'a, R: BasisRepr> Revised<'a, R> {
    fn new(a: &'a CscMatrix, basis: Vec<usize>, repr: R, xb: Vec<f64>) -> Self {
        let n = a.cols();
        let m = a.rows();
        let mut in_basis = vec![false; n];
        for &j in &basis {
            if j < n {
                in_basis[j] = true;
            }
        }
        Revised {
            a,
            n,
            m,
            basis,
            repr,
            xb,
            in_basis,
            pivots: 0,
            wd_singular: 0,
            wd_infeasible: 0,
            trace: None,
        }
    }

    /// Rebuilds the representation and `x_B` from scratch off the
    /// current basis, resetting accumulated update error. Keeps the
    /// incremental state — and returns `false` — on a (numerically
    /// near-impossible) singular refactorization, or on an injected
    /// transient refactorization failure.
    fn refactor(&mut self, b: &[f64]) -> bool {
        if faults::trip(Site::Refactor) || !self.repr.refactor(self.a, self.n, &self.basis) {
            return false;
        }
        self.xb = self
            .repr
            .ftran_dense(b)
            .into_iter()
            // Degenerate bases put basic variables at 0 whose exact
            // value re-emerges as ±1e-9 noise; snap those to 0 so the
            // ratio test stays non-negative.
            .map(|v| if v.abs() < 1e-7 { 0.0 } else { v })
            .collect();
        true
    }

    /// [`refactor`](Self::refactor) plus the feasibility watchdog:
    /// `false` means this run must be abandoned — the (freshly
    /// recomputed, or after a failed refactorization still-incremental)
    /// `x_B` is meaningfully negative, or the refactorization itself
    /// failed on a representation that must not certify verdicts from
    /// its incremental state. A representation that trusts its
    /// incremental state proceeds on a failed refactorization with the
    /// watchdog applied to the stale `x_B` (the historical
    /// dense-inverse behavior).
    fn refactor_checked(&mut self, b: &[f64], feas_tol: f64) -> bool {
        if !self.refactor(b) && !self.repr.trusts_incremental_optimal() {
            self.wd_singular += 1;
            if std::env::var_os("QAVA_LP_DEBUG_WATCHDOG").is_some() {
                eprintln!("watchdog: refactor failed (singular basis), pivots={}", self.pivots);
            }
            return false;
        }
        let ok = self.xb.iter().all(|&v| v >= -feas_tol);
        if !ok {
            self.wd_infeasible += 1;
            if std::env::var_os("QAVA_LP_DEBUG_WATCHDOG").is_some() {
                let min = self.xb.iter().cloned().fold(f64::INFINITY, f64::min);
                eprintln!(
                    "watchdog: min xb = {min:e} (tol {feas_tol:e}), pivots={}",
                    self.pivots
                );
            }
        }
        ok
    }

    /// `B⁻¹ · column_j` (forward transformation).
    fn ftran(&self, j: usize) -> Vec<f64> {
        if j >= self.n {
            self.repr.ftran_col(&[j - self.n], &[1.0])
        } else {
            let (idx, vals) = self.a.col(j);
            self.repr.ftran_col(idx, vals)
        }
    }

    /// Simplex multipliers `yᵀ = c_Bᵀ B⁻¹` for the given full cost
    /// vector (`costs[j]` for real columns, `art_cost` for artificials).
    fn multipliers(&self, costs: &[f64], art_cost: f64) -> Vec<f64> {
        let cb: Vec<f64> = self
            .basis
            .iter()
            .map(|&bj| if bj < self.n { costs[bj] } else { art_cost })
            .collect();
        self.repr.btran_dense(&cb)
    }

    /// Objective value `c_B · x_B`.
    fn objective(&self, costs: &[f64], art_cost: f64) -> f64 {
        self.basis
            .iter()
            .zip(&self.xb)
            .map(|(&bj, &v)| if bj < self.n { costs[bj] * v } else { art_cost * v })
            .sum()
    }

    /// Most-negative (Dantzig) or lowest-index (Bland) entering column
    /// with reduced cost below `-tol`; basic columns and artificials
    /// never enter.
    fn entering(&self, costs: &[f64], y: &[f64], bland: bool, tol: f64) -> Option<usize> {
        let mut best: Option<usize> = None;
        let mut best_val = -tol;
        for (j, &cj) in costs.iter().enumerate().take(self.n) {
            if self.in_basis[j] {
                continue;
            }
            let d = cj - self.a.col_dot(j, y);
            if d < best_val {
                if bland {
                    return Some(j);
                }
                best_val = d;
                best = Some(j);
            }
        }
        best
    }

    /// Minimum-ratio test on direction `u`; ties break toward the lowest
    /// basis index under Bland, largest pivot element otherwise
    /// (mirroring the dense path). Basic values that drifted slightly
    /// negative are treated as 0 so the ratio test never goes negative.
    ///
    /// Two passes on the pivot-element threshold: pivots below
    /// `PIVOT_TOL` amplify update error catastrophically (dividing the
    /// pivot row by a near-zero), so eligibility first requires a
    /// healthy element and only falls back to the loose tolerance when
    /// no healthy row exists. Skipping a tiny-pivot row can leave it
    /// `O(PIVOT_TOL·θ)` negative — the feasibility check at the next
    /// refactorization is the backstop.
    fn leaving(&self, u: &[f64], bland: bool) -> Option<usize> {
        self.leaving_with_tol(u, bland, PIVOT_TOL)
            .or_else(|| self.leaving_with_tol(u, bland, EPS))
    }

    fn leaving_with_tol(&self, u: &[f64], bland: bool, tol: f64) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.m {
            if u[i] > tol {
                let ratio = self.xb[i].max(0.0) / u[i];
                let better = match best {
                    None => true,
                    Some((bi, br)) => {
                        ratio < br - 1e-12
                            || (ratio < br + 1e-12
                                && if bland {
                                    self.basis[i] < self.basis[bi]
                                } else {
                                    u[i] > u[bi]
                                })
                    }
                };
                if better {
                    best = Some((i, ratio));
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Pivots: column `col` enters, the basic variable of `row` leaves.
    /// The nonzero support of `u` is computed once and shared by the
    /// `x_B` update and the representation update, so sparse entering
    /// directions only touch their own rows. Only real columns ever
    /// enter (`entering` does not price artificials), so the entering
    /// column's sparse data is always borrowable from `a`.
    fn pivot(&mut self, row: usize, col: usize, u: &[f64]) {
        debug_assert!(u[row].abs() > EPS, "pivot on (near-)zero element");
        debug_assert!(col < self.n, "artificial columns never re-enter");
        self.pivots += 1;
        if let Some(trace) = &mut self.trace {
            trace.push((col, row));
        }
        let leaving = self.basis[row];
        if leaving < self.n {
            self.in_basis[leaving] = false;
        }
        self.in_basis[col] = true;
        let support: Vec<usize> =
            u.iter().enumerate().filter(|(_, f)| f.abs() > EPS).map(|(i, _)| i).collect();
        let inv = 1.0 / u[row];
        self.xb[row] *= inv;
        for &i in &support {
            if i != row {
                self.xb[i] -= u[i] * self.xb[row];
                if self.xb[i].abs() < 1e-12 {
                    self.xb[i] = 0.0;
                }
            }
        }
        let (col_idx, col_vals) = self.a.col(col);
        self.repr.update(row, u, &support, col_idx, col_vals);
        self.basis[row] = col;
    }

    /// Runs simplex iterations to optimality for the given costs.
    /// `fresh` says the representation and `x_B` carry no incremental
    /// update error on entry (an exact identity basis or a basis that was
    /// refactorized immediately before the call).
    ///
    /// Robustness measures on top of the textbook loop:
    ///
    /// * **Sticky Bland** — after `DEGENERACY_PATIENCE` non-improving
    ///   pivots the rule switches to Bland and *stays* there; flipping
    ///   back to Dantzig on a noise-level objective change can re-enter
    ///   the same degenerate cycle.
    /// * **Verified termination** — an unbounded verdict reached from
    ///   incrementally-updated state is only trusted after a fresh
    ///   refactorization reproduces it (representation drift must never
    ///   turn a bounded LP into an "unbounded" one), and representations
    ///   that do not [trust their incremental
    ///   state](BasisRepr::trusts_incremental_optimal) get the same
    ///   treatment for optimality verdicts: the eta file's accumulated
    ///   error can mask improving columns and drift the reported `x_B`
    ///   off `B⁻¹b` by far more than the optimality tolerance.
    /// * **Feasibility watchdog** — every refactorization recomputes
    ///   `x_B` exactly; if it has gone meaningfully negative the update
    ///   error has corrupted the trajectory, and the caller restarts the
    ///   solve from scratch ([`RunOutcome::LostFeasibility`]) instead of
    ///   grinding at a poisoned vertex.
    fn run(
        &mut self,
        costs: &[f64],
        art_cost: f64,
        b: &[f64],
        force_bland: bool,
        fresh: bool,
    ) -> Result<RunOutcome, LpError> {
        let b_norm = b.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()));
        let feas_tol = 1e-6 * (1.0 + b_norm);
        let mut stalled = 0usize;
        let mut bland = force_bland;
        let mut just_refactored = fresh;
        for it in 0..MAX_PIVOTS {
            if it > 0 && self.repr.should_refactor(it) && !just_refactored {
                // A mid-run refactorization is an error reset, not a
                // correctness requirement: when the current (typically
                // transient, degenerate) basis is numerically singular,
                // the incremental representation is still a valid
                // description of it, so the run continues on it and the
                // rebuild is retried once later pivots move off the
                // vertex. Verdicts are unaffected — `just_refactored`
                // stays false on a failed rebuild, so optimality and
                // unboundedness still require a *successful* fresh
                // factorization before they are trusted. The watchdog
                // applies either way, to the freshly recomputed `x_B`
                // when the rebuild succeeded and to the stale one when
                // it did not (the historical dense-inverse behavior).
                let refreshed = self.refactor(b);
                if !self.xb.iter().all(|&v| v >= -feas_tol) {
                    self.wd_infeasible += 1;
                    return Ok(RunOutcome::LostFeasibility);
                }
                just_refactored = refreshed;
            }
            bland = bland || stalled >= DEGENERACY_PATIENCE;
            let y = self.multipliers(costs, art_cost);
            let Some(col) = self.entering(costs, &y, bland, EPS) else {
                if just_refactored || self.repr.trusts_incremental_optimal() {
                    return Ok(RunOutcome::Optimal);
                }
                // Optimality seen from drifted state: re-derive the
                // verdict (and the solution itself) from a fresh
                // factorization before trusting it.
                if !self.refactor_checked(b, feas_tol) {
                    return Ok(RunOutcome::LostFeasibility);
                }
                just_refactored = true;
                continue;
            };
            let u = self.ftran(col);
            let pivoted = if let Some(row) = self.leaving(&u, bland) {
                Some((row, col, u))
            } else {
                // No pivotable row. Equality-heavy systems leave columns
                // whose reduced cost is barely past the tolerance from
                // elimination noise; re-price against a much stricter
                // threshold before considering an unbounded ray (the
                // dense oracle does the same).
                match self.entering(costs, &y, bland, 1e-6) {
                    None if just_refactored || self.repr.trusts_incremental_optimal() => {
                        return Ok(RunOutcome::Optimal)
                    }
                    None => {
                        // Same drifted-state rule as the strict-tolerance
                        // exit above: this is equally an optimality
                        // verdict, and equally untrustworthy from an
                        // incrementally-updated eta stack.
                        if !self.refactor_checked(b, feas_tol) {
                            return Ok(RunOutcome::LostFeasibility);
                        }
                        just_refactored = true;
                        None
                    }
                    Some(col2) => {
                        let u2 = self.ftran(col2);
                        match self.leaving(&u2, bland) {
                            Some(row2) => Some((row2, col2, u2)),
                            None if just_refactored => return Err(LpError::Unbounded),
                            None => {
                                // Re-derive the verdict from fresh state;
                                // the watchdog applies here too.
                                if !self.refactor_checked(b, feas_tol) {
                                    return Ok(RunOutcome::LostFeasibility);
                                }
                                just_refactored = true;
                                None
                            }
                        }
                    }
                }
            };
            let Some((row, col, u)) = pivoted else { continue };
            let before = self.objective(costs, art_cost);
            self.pivot(row, col, &u);
            just_refactored = false;
            stalled = if (self.objective(costs, art_cost) - before).abs() <= 1e-12 {
                stalled + 1
            } else {
                0
            };
        }
        Err(LpError::PivotLimit)
    }

    /// Extracts the solution over the real columns.
    fn solution(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        for (i, &bj) in self.basis.iter().enumerate() {
            if bj < self.n {
                x[bj] = self.xb[i];
            }
        }
        x
    }

    /// Whether every non-basic real column prices out non-negative —
    /// the dual-feasibility invariant the dual simplex maintains. Scale
    /// changes multiply each reduced cost by a positive column scale, so
    /// the sign test survives re-equilibration between sweep points.
    fn dual_feasible(&self, costs: &[f64], tol: f64) -> bool {
        let y = self.multipliers(costs, 0.0);
        (0..self.n).all(|j| self.in_basis[j] || costs[j] - self.a.col_dot(j, &y) >= -tol)
    }

    /// Dual-simplex iterations from a dual-feasible basis: the leaving
    /// row is the most negative `x_B` entry, the entering column wins
    /// the dual ratio test `min d_j / |α_j|` over `α_j < 0` in the
    /// pivot row (standard form has only the `x ≥ 0` lower bounds, so
    /// the general method's bound-flip case — a nonbasic variable
    /// jumping between finite bounds instead of entering — degenerates
    /// away). Primal feasibility of `x_B` is the termination condition;
    /// dual feasibility is the loop invariant, audited once more at the
    /// verdict.
    ///
    /// The verdict rules mirror [`run`](Self::run): an optimality
    /// verdict seen from incrementally-updated state is only trusted by
    /// representations that
    /// [trust it](BasisRepr::trusts_incremental_optimal); everyone else
    /// re-derives it from a fresh factorization first. Anything the
    /// loop cannot handle — no eligible entering column (primal
    /// infeasible or numerically stuck), a dual-degenerate stall past
    /// the Bland patience, a singular refactorization, an injected
    /// [`Site::DualPivot`] fault — returns [`DualOutcome::GiveUp`]: the
    /// caller falls back to a cold primal solve, so reoptimization can
    /// never change a verdict, only its cost.
    fn run_dual(&mut self, costs: &[f64], b: &[f64]) -> DualOutcome {
        let mut just_refactored = true;
        let mut stalled = 0usize;
        for it in 0..MAX_PIVOTS {
            // The injection site guards every dual iteration, including
            // the terminal one — a `dual-pivot` plan must be able to trip
            // even a zero-pivot reoptimization into the cold fallback.
            if faults::trip(Site::DualPivot) {
                return DualOutcome::GiveUp;
            }
            if it > 0 && self.repr.should_refactor(it) && !just_refactored {
                just_refactored = self.refactor(b);
            }
            // Leaving row: the most negative basic value. None ⇒ primal
            // feasible ⇒ optimal (dual feasibility is the invariant).
            let mut leave: Option<usize> = None;
            let mut most = -1e-9;
            for (i, &v) in self.xb.iter().enumerate() {
                if v < most {
                    most = v;
                    leave = Some(i);
                }
            }
            let Some(r) = leave else {
                if !just_refactored && !self.repr.trusts_incremental_optimal() {
                    // Same drifted-state rule as the primal loop: rebuild
                    // and let the fresh `x_B` re-derive the verdict.
                    if !self.refactor(b) {
                        self.wd_singular += 1;
                        return DualOutcome::GiveUp;
                    }
                    just_refactored = true;
                    continue;
                }
                // Verdict audit: the invariant must actually still hold.
                if self.dual_feasible(costs, 1e-6) {
                    return DualOutcome::Optimal;
                }
                return DualOutcome::GiveUp;
            };
            if stalled > DEGENERACY_PATIENCE {
                return DualOutcome::GiveUp;
            }
            let rho = self.repr.binv_row(r);
            let y = self.multipliers(costs, 0.0);
            // Dual ratio test; ties break toward the largest pivot
            // element, matching the primal ratio test's tie-break.
            let mut best: Option<(usize, f64, f64)> = None;
            for (j, &cj) in costs.iter().enumerate().take(self.n) {
                if self.in_basis[j] {
                    continue;
                }
                let alpha = self.a.col_dot(j, &rho);
                if alpha < -PIVOT_TOL {
                    let d = (cj - self.a.col_dot(j, &y)).max(0.0);
                    let ratio = d / -alpha;
                    let better = match best {
                        None => true,
                        Some((_, br, ba)) => {
                            ratio < br - 1e-12 || (ratio < br + 1e-12 && -alpha > ba)
                        }
                    };
                    if better {
                        best = Some((j, ratio, -alpha));
                    }
                }
            }
            // No entering column with a negative pivot-row entry: the
            // LP is primal infeasible (or the row is numerical debris).
            // Either way the cold path is the authority.
            let Some((col, _, _)) = best else { return DualOutcome::GiveUp };
            let u = self.ftran(col);
            if u[r] >= -PIVOT_TOL {
                // The ftran'd direction disagrees with the B⁻¹ row the
                // ratio test priced — accumulated update error. One
                // fresh factorization gets a retry; from fresh state the
                // disagreement is structural and the loop gives up.
                if just_refactored || !self.refactor(b) {
                    return DualOutcome::GiveUp;
                }
                just_refactored = true;
                continue;
            }
            let before = self.objective(costs, 0.0);
            self.pivot(r, col, &u);
            just_refactored = false;
            stalled = if (self.objective(costs, 0.0) - before).abs() <= 1e-12 {
                stalled + 1
            } else {
                0
            };
        }
        DualOutcome::GiveUp
    }
}

/// How a dual-simplex reoptimization attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DualOutcome {
    /// Primal feasibility restored with dual feasibility intact: the
    /// basis is optimal.
    Optimal,
    /// Anything else — the caller must run a cold primal solve.
    GiveUp,
}

/// Outcome of a revised-simplex core solve, reported back to the
/// [`LpSolver`](crate::LpSolver) session.
pub(crate) struct CoreOutcome {
    /// Solution over the real columns.
    pub x: Vec<f64>,
    /// Final basis (cached by the session when artificial-free).
    pub basis: Vec<usize>,
    /// Pivots spent, including failed warm-start and watchdog-restart
    /// attempts.
    pub pivots: usize,
    /// The supplied warm basis was accepted and ran to optimality.
    pub warm_start_used: bool,
    /// Feasibility-watchdog refactor-backstop trips: a refactorization
    /// found `x_B` meaningfully negative — or, on a representation that
    /// must not certify verdicts from incremental state, failed outright
    /// on a (numerically) singular basis — and the solve restarted from
    /// scratch. Nonzero counts mean the incremental updates corrupted a
    /// trajectory or conditioning collapsed — the symptoms the LU
    /// representation exists to eliminate.
    pub watchdog_restarts: usize,
    /// Watchdog causes observed across every attempted run (including
    /// abandoned warm starts): singular refactorizations…
    pub watchdog_singular: usize,
    /// …and infeasible (negative) recomputed `x_B`.
    pub watchdog_infeasible: usize,
    /// Cold re-solves forced into all-Bland mode (after a Dantzig
    /// pivot-limit grind or a watchdog trip).
    pub bland_retries: usize,
    /// Accuracy-triggered refactorization flags across all attempts
    /// (the FT/BG determinant-identity cross-check disagreeing with the
    /// eliminated diagonal; see [`UpdateStability`]).
    pub accuracy_refactors: usize,
    /// Bartels–Golub row interchanges across all attempts.
    pub bg_interchanges: usize,
    /// Max spike-pivot growth factor observed across all attempts.
    pub bg_max_growth: f64,
}

/// Counters a [`Revised`] run leaves behind, accumulated across the
/// warm/cold/retry attempts of one core solve (each attempt builds a
/// fresh state, so the telemetry outlives them).
#[derive(Debug, Default, Clone, Copy)]
struct RunTelemetry {
    pivots: usize,
    wd_singular: usize,
    wd_infeasible: usize,
    accuracy_refactors: usize,
    bg_interchanges: usize,
    bg_max_growth: f64,
}

impl RunTelemetry {
    /// Folds a finished (or abandoned) run's counters in. The engine's
    /// stability counters are lifetime totals of that engine, and every
    /// attempt builds a fresh engine, so summing here never
    /// double-counts.
    fn absorb<R: BasisRepr>(&mut self, state: &Revised<'_, R>) {
        self.pivots += state.pivots;
        self.wd_singular += state.wd_singular;
        self.wd_infeasible += state.wd_infeasible;
        let stab = state.repr.stability();
        self.accuracy_refactors += stab.accuracy_refactors;
        self.bg_interchanges += stab.interchanges;
        self.bg_max_growth = self.bg_max_growth.max(stab.max_growth);
    }
}

/// Two-phase (or warm-started) revised simplex on an equilibrated
/// system, using the dense-inverse basis engine (the `sparse` backend).
pub(crate) fn solve_equilibrated(
    costs: &[f64],
    a: &CscMatrix,
    b: &[f64],
    warm: Option<&[usize]>,
) -> Result<CoreOutcome, LpError> {
    solve_equilibrated_with::<DenseInverse>(costs, a, b, warm)
}

/// Two-phase (or warm-started) revised simplex using the LU + eta-file
/// basis engine (the `lu` backend).
pub(crate) fn solve_equilibrated_lu(
    costs: &[f64],
    a: &CscMatrix,
    b: &[f64],
    warm: Option<&[usize]>,
) -> Result<CoreOutcome, LpError> {
    solve_equilibrated_with::<LuBasis>(costs, a, b, warm)
}

/// Two-phase (or warm-started) revised simplex using the LU +
/// Forrest–Tomlin basis engine (the `lu-ft` backend).
pub(crate) fn solve_equilibrated_lu_ft(
    costs: &[f64],
    a: &CscMatrix,
    b: &[f64],
    warm: Option<&[usize]>,
) -> Result<CoreOutcome, LpError> {
    solve_equilibrated_with::<FtBasis>(costs, a, b, warm)
}

/// Two-phase (or warm-started) revised simplex using the LU +
/// Bartels–Golub basis engine (the `lu-bg` backend).
pub(crate) fn solve_equilibrated_lu_bg(
    costs: &[f64],
    a: &CscMatrix,
    b: &[f64],
    warm: Option<&[usize]>,
) -> Result<CoreOutcome, LpError> {
    solve_equilibrated_with::<BgBasis>(costs, a, b, warm)
}

/// Dual-simplex reoptimization from a previous optimal basis, using the
/// dense-inverse engine (the `sparse` backend).
pub(crate) fn dual_reoptimize(
    costs: &[f64],
    a: &CscMatrix,
    b: &[f64],
    basis: &[usize],
) -> Option<CoreOutcome> {
    dual_reoptimize_with::<DenseInverse>(costs, a, b, basis)
}

/// Dual-simplex reoptimization using the LU + eta-file engine.
pub(crate) fn dual_reoptimize_lu(
    costs: &[f64],
    a: &CscMatrix,
    b: &[f64],
    basis: &[usize],
) -> Option<CoreOutcome> {
    dual_reoptimize_with::<LuBasis>(costs, a, b, basis)
}

/// Dual-simplex reoptimization using the LU + Forrest–Tomlin engine.
pub(crate) fn dual_reoptimize_lu_ft(
    costs: &[f64],
    a: &CscMatrix,
    b: &[f64],
    basis: &[usize],
) -> Option<CoreOutcome> {
    dual_reoptimize_with::<FtBasis>(costs, a, b, basis)
}

/// Dual-simplex reoptimization using the LU + Bartels–Golub engine.
pub(crate) fn dual_reoptimize_lu_bg(
    costs: &[f64],
    a: &CscMatrix,
    b: &[f64],
    basis: &[usize],
) -> Option<CoreOutcome> {
    dual_reoptimize_with::<BgBasis>(costs, a, b, basis)
}

/// Reoptimizes an equilibrated system from a previous point's optimal
/// basis: refactorize the basis once, verify it still prices out
/// dual-feasible (an RHS-only perturbation leaves reduced costs — and
/// hence dual feasibility — untouched; an objective perturbation may
/// not survive the check), then run dual pivots until primal
/// feasibility returns. `None` means "run a cold solve instead": a
/// singular or stale basis, lost dual feasibility, or any mid-flight
/// numerical doubt all land there, so this path is a pure fast-path and
/// never an alternative source of verdicts.
fn dual_reoptimize_with<R: BasisRepr>(
    costs: &[f64],
    a: &CscMatrix,
    b: &[f64],
    basis: &[usize],
) -> Option<CoreOutcome> {
    let m = a.rows();
    let n = a.cols();
    if m == 0 || basis.len() != m || basis.iter().any(|&j| j >= n) {
        return None;
    }
    let mut repr = R::identity(m);
    if !repr.refactor(a, n, basis) {
        return None;
    }
    let xb: Vec<f64> = repr
        .ftran_dense(b)
        .into_iter()
        .map(|v| if v.abs() < 1e-7 { 0.0 } else { v })
        .collect();
    let mut state = Revised::new(a, basis.to_vec(), repr, xb);
    if !state.dual_feasible(costs, 1e-7) {
        return None;
    }
    match state.run_dual(costs, b) {
        DualOutcome::Optimal => {
            let stab = state.repr.stability();
            Some(CoreOutcome {
                x: state.solution(),
                basis: state.basis,
                pivots: state.pivots,
                warm_start_used: true,
                watchdog_restarts: 0,
                watchdog_singular: state.wd_singular,
                watchdog_infeasible: state.wd_infeasible,
                bland_retries: 0,
                accuracy_refactors: stab.accuracy_refactors,
                bg_interchanges: stab.interchanges,
                bg_max_growth: stab.max_growth,
            })
        }
        DualOutcome::GiveUp => None,
    }
}

/// Which basis engine a [`trace_cold_pivots`] run drives — the
/// test-facing selector behind [`crate::debug::trace_pivots`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TraceEngine {
    /// Explicit dense inverse (`sparse` backend).
    DenseInverse,
    /// LU + product-form eta file (`lu` backend).
    LuEta,
    /// LU + Forrest–Tomlin spike swaps (`lu-ft` backend).
    LuFt,
    /// LU + Bartels–Golub interchanging elimination (`lu-bg` backend).
    LuBg,
}

/// Result of a traced run: the outcome (`Ok(Some(x))` optimal,
/// `Ok(None)` watchdog-abandoned) plus the recorded
/// `(entering column, leaving slot)` pivot sequence.
pub(crate) type TraceOutcome = (Result<Option<Vec<f64>>, LpError>, Vec<(usize, usize)>);

/// Debug/test-only cold two-phase solve that records every pivot as
/// `(entering column, leaving slot)`. The metamorphic suite runs the eta
/// and FT engines through this side by side: with Bland's rule both
/// engines must visit the **identical** pivot sequence on deterministic
/// instances, so any divergence localizes a bug to the basis-update
/// algebra rather than the shared pricing loop.
pub(crate) fn trace_cold_pivots(
    engine: TraceEngine,
    costs: &[f64],
    a: &CscMatrix,
    b: &[f64],
    force_bland: bool,
) -> TraceOutcome {
    match engine {
        TraceEngine::DenseInverse => trace_cold_with::<DenseInverse>(costs, a, b, force_bland),
        TraceEngine::LuEta => trace_cold_with::<LuBasis>(costs, a, b, force_bland),
        TraceEngine::LuFt => trace_cold_with::<FtBasis>(costs, a, b, force_bland),
        TraceEngine::LuBg => trace_cold_with::<BgBasis>(costs, a, b, force_bland),
    }
}

/// Bench hook behind `qava_lp::debug::update_solve_cycle`: one
/// factorization (the trivial artificial identity), a greedy chain of
/// `updates` column exchanges (columns drawn in a fixed LCG order; each
/// enters the slot with its largest healthy direction component, so
/// slots are revisited the way degenerate εmax runs revisit them), then
/// `solves` rounds of one sparse-column ftran plus one dense btran —
/// the pivot loop's solve mix — with **zero** refactorizations
/// throughout. Both LU engines run the identical chain, which is what
/// "ftran/btran work at equal refactorization counts" means
/// operationally. Returns a checksum so the optimizer cannot elide the
/// solves.
pub(crate) fn update_solve_cycle<R: BasisRepr>(
    a: &CscMatrix,
    updates: usize,
    solves: usize,
) -> f64 {
    let m = a.rows();
    let n = a.cols();
    let mut repr = R::identity(m);
    let mut basis: Vec<usize> = (n..n + m).collect();
    let mut done = 0usize;
    let mut rng = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (rng >> 33) as usize
    };
    let mut attempts = 0usize;
    while done < updates && attempts < 32 * updates {
        attempts += 1;
        let col = next() % n;
        let (idx, vals) = a.col(col);
        if idx.is_empty() || basis.contains(&col) {
            continue;
        }
        let u = repr.ftran_col(idx, vals);
        let Some((slot, _)) = u
            .iter()
            .enumerate()
            .filter(|&(_, v)| v.abs() > 0.1)
            .max_by(|x, y| x.1.abs().total_cmp(&y.1.abs()))
        else {
            continue;
        };
        let support: Vec<usize> = (0..m).filter(|&i| u[i].abs() > EPS).collect();
        repr.update(slot, &u, &support, idx, vals);
        basis[slot] = col;
        done += 1;
    }
    // Hard assert: benches run in release, and a silently shorter chain
    // would make the `basis_update{N}` rows measure something other than
    // their names claim while still gating CI against the old baseline.
    assert_eq!(done, updates, "update_solve_cycle: exchange-chain construction starved");
    let cb: Vec<f64> = (0..m).map(|i| (i as f64) * 0.37 - 1.1).collect();
    let mut checksum = 0.0;
    for s in 0..solves {
        let col = next() % n;
        let (idx, vals) = a.col(col);
        let u = repr.ftran_col(idx, vals);
        checksum += u[s % m];
        let y = repr.btran_dense(&cb);
        checksum += y[(s / 2) % m];
    }
    checksum
}

fn trace_cold_with<R: BasisRepr>(
    costs: &[f64],
    a: &CscMatrix,
    b: &[f64],
    force_bland: bool,
) -> TraceOutcome {
    let mut tele = RunTelemetry::default();
    let mut trace = Vec::new();
    let out = cold_two_phase_traced::<R>(costs, a, b, force_bland, &mut tele, Some(&mut trace));
    (out.map(|r| r.map(|(x, _)| x)), trace)
}

fn solve_equilibrated_with<R: BasisRepr>(
    costs: &[f64],
    a: &CscMatrix,
    b: &[f64],
    warm: Option<&[usize]>,
) -> Result<CoreOutcome, LpError> {
    let m = a.rows();
    let n = a.cols();
    let mut tele = RunTelemetry::default();
    let mut watchdog_restarts = 0usize;
    let outcome = |tele: RunTelemetry,
                   restarts: usize,
                   x: Vec<f64>,
                   basis: Vec<usize>,
                   warm_start_used: bool,
                   bland_retries: usize| CoreOutcome {
        x,
        basis,
        pivots: tele.pivots,
        warm_start_used,
        watchdog_restarts: restarts,
        watchdog_singular: tele.wd_singular,
        watchdog_infeasible: tele.wd_infeasible,
        bland_retries,
        accuracy_refactors: tele.accuracy_refactors,
        bg_interchanges: tele.bg_interchanges,
        bg_max_growth: tele.bg_max_growth,
    };
    if m == 0 {
        return if costs.iter().any(|&c| c < -EPS) {
            Err(LpError::Unbounded)
        } else {
            Ok(outcome(tele, 0, vec![0.0; n], Vec::new(), false, 0))
        };
    }

    // ---- Warm start: refactorize the cached basis; use it if primal
    // feasible. A failed warm start costs one refactorization. Anything
    // short of a clean optimum — lost feasibility, a pivot-limit grind
    // on a stale degenerate basis — falls through to the cold path, so
    // caching can never change a result, only its speed. (Infeasible
    // cannot arise here: the warm basis is primal feasible by check;
    // Unbounded is a verified verdict and is returned.)
    if let Some(basis) = warm {
        if basis.len() == m && basis.iter().all(|&j| j < n) {
            let mut repr = R::identity(m);
            if repr.refactor(a, n, basis) {
                let xb = repr.ftran_dense(b);
                if xb.iter().all(|&v| v >= -1e-9) {
                    let xb = xb.into_iter().map(|v| v.max(0.0)).collect();
                    let mut state = Revised::new(a, basis.to_vec(), repr, xb);
                    let run = state.run(costs, 0.0, b, false, true);
                    tele.absorb(&state);
                    match run {
                        Ok(RunOutcome::Optimal) => {
                            return Ok(outcome(
                                tele,
                                watchdog_restarts,
                                state.solution(),
                                state.basis,
                                true,
                                0,
                            ));
                        }
                        Ok(RunOutcome::LostFeasibility) => watchdog_restarts += 1,
                        Err(LpError::PivotLimit) => {}
                        Err(e) => return Err(e),
                    }
                }
            }
        }
    }

    // Cold two-phase; retried once in all-Bland mode if the feasibility
    // watchdog fires (pathological conditioning) — or if the Dantzig
    // attempt ground into the pivot limit: the pathological walk3d-style
    // LPs can cycle for tens of thousands of degenerate pivots under
    // Dantzig pricing, while Bland's rule terminates by construction.
    match cold_two_phase::<R>(costs, a, b, false, &mut tele) {
        Ok(Some((x, basis))) => {
            return Ok(outcome(tele, watchdog_restarts, x, basis, false, 0))
        }
        Ok(None) => watchdog_restarts += 1,
        Err(LpError::PivotLimit) => {}
        Err(e) => return Err(e),
    }
    match cold_two_phase::<R>(costs, a, b, true, &mut tele)? {
        Some((x, basis)) => Ok(outcome(tele, watchdog_restarts, x, basis, false, 1)),
        None => Err(LpError::PivotLimit),
    }
}

/// Textbook two-phase solve. `Ok(None)` means the feasibility watchdog
/// fired and the caller should retry more conservatively.
#[allow(clippy::type_complexity)]
fn cold_two_phase<R: BasisRepr>(
    costs: &[f64],
    a: &CscMatrix,
    b: &[f64],
    force_bland: bool,
    tele: &mut RunTelemetry,
) -> Result<Option<(Vec<f64>, Vec<usize>)>, LpError> {
    cold_two_phase_traced::<R>(costs, a, b, force_bland, tele, None)
}

/// [`cold_two_phase`] with an optional pivot trace (see
/// [`trace_cold_pivots`]); the production paths pass `None`.
#[allow(clippy::type_complexity)]
fn cold_two_phase_traced<R: BasisRepr>(
    costs: &[f64],
    a: &CscMatrix,
    b: &[f64],
    force_bland: bool,
    tele: &mut RunTelemetry,
    trace: Option<&mut Vec<(usize, usize)>>,
) -> Result<Option<(Vec<f64>, Vec<usize>)>, LpError> {
    let m = a.rows();
    let n = a.cols();

    // ---- Phase 1: artificial identity basis, minimize their sum. ----
    let mut state = Revised::new(a, (n..n + m).collect(), R::identity(m), b.to_vec());
    if trace.is_some() {
        state.trace = Some(Vec::new());
    }
    let phase1_costs = vec![0.0; n];
    let phase1 = match state.run(&phase1_costs, 1.0, b, force_bland, true) {
        Ok(outcome) => outcome,
        Err(e) => {
            tele.absorb(&state);
            if let Some(t) = trace {
                *t = state.trace.take().unwrap_or_default();
            }
            return Err(e);
        }
    };
    if phase1 == RunOutcome::LostFeasibility {
        tele.absorb(&state);
        if let Some(t) = trace {
            *t = state.trace.take().unwrap_or_default();
        }
        return Ok(None);
    }
    let b_norm = b.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()));
    if state.objective(&phase1_costs, 1.0) > 1e-7 * (1.0 + b_norm) {
        tele.absorb(&state);
        if let Some(t) = trace {
            *t = state.trace.take().unwrap_or_default();
        }
        return Err(LpError::Infeasible);
    }

    // Drive lingering artificials out of the basis where possible; rows
    // where no real column has a nonzero in B⁻¹A are redundant and keep
    // their artificial basic at value 0 (it can never re-enter).
    for i in 0..m {
        if state.basis[i] >= n {
            let row_i = state.repr.binv_row(i);
            let found = (0..n).find(|&j| state.a.col_dot(j, &row_i).abs() > 1e-7);
            if let Some(j) = found {
                let u = state.ftran(j);
                state.pivot(i, j, &u);
            }
        }
    }

    // ---- Phase 2: real costs. Artificials cannot re-enter: `entering`
    // only prices real columns. ----
    let phase2 = state.run(costs, 0.0, b, force_bland, false);
    tele.absorb(&state);
    if let Some(t) = trace {
        *t = state.trace.take().unwrap_or_default();
    }
    if phase2? == RunOutcome::LostFeasibility {
        return Ok(None);
    }
    Ok(Some((state.solution(), state.basis)))
}

#[cfg(test)]
mod tests {
    use crate::presolve::StdRows;
    use crate::{BackendChoice, LpError, LpSolver};

    /// The four revised-simplex backends every core test runs through.
    const REVISED_BACKENDS: [BackendChoice; 4] =
        [BackendChoice::Sparse, BackendChoice::Lu, BackendChoice::LuFt, BackendChoice::LuBg];

    fn rows_of(dense: Vec<Vec<f64>>) -> Vec<Vec<(usize, f64)>> {
        dense
            .into_iter()
            .map(|r| r.iter().enumerate().filter(|(_, &v)| v != 0.0).map(|(j, &v)| (j, v)).collect())
            .collect()
    }

    fn solve_std_rows(choice: BackendChoice, lp: StdRows) -> Result<Vec<f64>, LpError> {
        LpSolver::with_choice(choice).solve_std_rows(lp)
    }

    fn solve(
        choice: BackendChoice,
        costs: Vec<f64>,
        rows: Vec<Vec<f64>>,
        b: Vec<f64>,
    ) -> Result<Vec<f64>, LpError> {
        let ncols = costs.len();
        solve_std_rows(choice, StdRows { costs, rows: rows_of(rows), b, ncols })
    }

    #[test]
    fn matches_dense_on_textbook_lp() {
        for choice in REVISED_BACKENDS {
            // min −x1 − x2 s.t. x1 + x2 + s = 1.
            let x = solve(choice, vec![-1.0, -1.0, 0.0], vec![vec![1.0, 1.0, 1.0]], vec![1.0])
                .unwrap();
            assert!((x[0] + x[1] - 1.0).abs() < 1e-9, "{choice}");
        }
    }

    #[test]
    fn infeasible_and_unbounded() {
        for choice in REVISED_BACKENDS {
            // x0 = 1 and x0 = 2 (after pattern dedup: conflicting duplicates).
            let r = solve(choice, vec![0.0], vec![vec![1.0], vec![1.0]], vec![1.0, 2.0]);
            assert_eq!(r.unwrap_err(), LpError::Infeasible, "{choice}");
            // min −x with no constraints on x.
            let r = solve(choice, vec![-1.0], vec![], vec![]);
            assert_eq!(r.unwrap_err(), LpError::Unbounded, "{choice}");
        }
    }

    #[test]
    fn warm_start_reuses_basis() {
        // Same pattern solved twice with nearby numbers in ONE session;
        // the second solve must produce the same optimum through the warm
        // path, and the session must record the cache hit — for both
        // warm-capable backends.
        for choice in REVISED_BACKENDS {
            let mut solver = LpSolver::with_choice(choice);
            for rhs in [1.0, 1.1] {
                let x = solver
                    .solve_std_rows(StdRows {
                        costs: vec![-1.0, -2.0, 0.0, 0.0],
                        rows: rows_of(vec![vec![1.0, 1.0, 1.0, 0.0], vec![1.0, -1.0, 0.0, 1.0]]),
                        b: vec![rhs, 0.5],
                        ncols: 4,
                    })
                    .unwrap();
                let obj = -x[0] - 2.0 * x[1];
                let expect = -2.0 * rhs;
                assert!(
                    (obj - expect).abs() < 1e-7,
                    "{choice} rhs {rhs}: got {obj}, want {expect}"
                );
            }
            assert_eq!(solver.stats().warm_start_hits, 1, "{choice}: second solve warm-starts");
        }
    }

    #[test]
    fn polylow_cycling_repro() {
        let costs = vec![-1.0, 1.0, -1.0, 1.0, -1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let b = vec![-0.0, -0.0, -0.0, 0.0009994998332499509, -0.0, -0.0, -0.0, -0.0, -0.0, -0.0];
        let rows: Vec<Vec<(usize, f64)>> = vec![
            vec![(4, -1.0), (5, 1.0), (6, 1.0), (7, -1.0), (8, -1.0), (9, -1000.0), (10, -100.0), (11, -1000000.0), (12, -100000.0), (13, -10000.0)],
            vec![(2, -1.0), (3, 1.0), (9, -1.0), (10, 1.0), (11, -2000.0), (12, 900.0), (13, 200.0)],
            vec![(0, -1.0), (1, 1.0), (11, -1.0), (12, 1.0), (13, -1.0)],
            vec![(0, 0.999), (1, -0.999), (2, 0.49949999999999994), (3, -0.49949999999999994), (14, -1.0), (15, -1000.0), (16, -100.0), (17, -99.0), (18, -1000000.0), (19, -100000.0), (20, -99000.0), (21, -10000.0), (22, -9900.0), (23, -9801.0)],
            vec![(0, 0.9989999999999999), (1, -0.9989999999999999), (15, -1.0), (16, 1.0), (17, 1.0), (18, -2000.0), (19, 900.0), (20, 901.0), (21, 200.0), (22, 199.0), (23, 198.0)],
            vec![(18, -1.0), (19, 1.0), (20, 1.0), (21, -1.0), (22, -1.0), (23, -1.0)],
            vec![(4, -1.0), (5, 1.0), (24, -1.0), (25, -1000.0), (26, -100.0), (27, 100.0), (28, -1000000.0), (29, -100000.0), (30, 100000.0), (31, -10000.0), (32, 10000.0), (33, -10000.0)],
            vec![(2, -1.0), (3, 1.0), (25, -1.0), (26, 1.0), (27, -1.0), (28, -2000.0), (29, 900.0), (30, -900.0), (31, 200.0), (32, -200.0), (33, 200.0)],
            vec![(0, -1.0), (1, 1.0), (28, -1.0), (29, 1.0), (30, -1.0), (31, -1.0), (32, 1.0), (33, -1.0)],
            vec![(0, 1.0), (1, -1.0), (2, 1.0), (3, -1.0), (4, 1.0), (5, -1.0), (34, 1.0)],
        ];
        for choice in REVISED_BACKENDS {
            let r = solve_std_rows(
                choice,
                StdRows { costs: costs.clone(), rows: rows.clone(), b: b.clone(), ncols: 35 },
            );
            assert!(r.is_ok(), "{choice}: got {r:?}");
        }
    }

    #[test]
    fn redundant_zero_row_survives() {
        for choice in REVISED_BACKENDS {
            // Duplicate rows are presolved away; the optimum is unchanged.
            let x = solve(
                choice,
                vec![1.0, 0.0],
                vec![vec![1.0, 1.0], vec![2.0, 2.0]],
                vec![1.0, 2.0],
            )
            .unwrap();
            assert!((x[0] + x[1] - 1.0).abs() < 1e-9, "{choice}");
            assert!(x[0].abs() < 1e-9, "{choice}");
        }
    }
}
