//! Dense two-phase primal simplex on the standard form
//! `min cᵀx  s.t.  A·x = b,  x ≥ 0,  b ≥ 0`.
//!
//! Phase 1 introduces one artificial variable per row and minimizes their
//! sum; phase 2 continues from the feasible basis with the true costs.
//! Pricing is Dantzig (most negative reduced cost) until a degeneracy
//! counter trips, after which Bland's rule guarantees termination.
//!
//! This is the **dense tableau backend**: registered as the
//! [`DenseTableau`](crate::DenseTableau) implementation of the
//! [`LpBackend`](crate::LpBackend) trait (where it receives
//! already-presolved, already-equilibrated systems from the
//! [`LpSolver`](crate::LpSolver) session), and kept fully functional as a
//! standalone differential-testing oracle ([`solve_standard_dense`]).
//! Building with the `dense-simplex` feature makes it the default backend
//! of new sessions.

use crate::LpError;
use qava_linalg::{vecops, Matrix, EPS};

/// Hard cap on simplex pivots per phase; far above anything the synthesis
/// LPs need, but prevents infinite loops on adversarial numeric input.
pub const MAX_PIVOTS: usize = 50_000;

/// Number of consecutive non-improving pivots tolerated before switching
/// from Dantzig pricing to Bland's anti-cycling rule.
const DEGENERACY_PATIENCE: usize = 40;

/// Solves `min cᵀx, A·x = b, x ≥ 0` (with `b ≥ 0`) with the dense
/// two-phase tableau and returns the optimal `x`.
///
/// The system is max-norm equilibrated first (rows, then columns): template
/// LPs routinely mix coefficients like a failure probability `1e-7` with
/// invariant bounds around `1e2`, and an unscaled tableau then misjudges
/// feasibility against its absolute pivot tolerances.
///
/// # Errors
///
/// [`LpError::Infeasible`], [`LpError::Unbounded`], or
/// [`LpError::PivotLimit`].
pub fn solve_standard_dense(costs: &[f64], a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LpError> {
    let m = a.rows();
    let n = a.cols();
    debug_assert_eq!(costs.len(), n);
    debug_assert_eq!(b.len(), m);
    debug_assert!(b.iter().all(|&v| v >= 0.0));

    if m == 0 {
        // No constraints: optimum is 0 unless some cost is negative.
        return if costs.iter().any(|&c| c < -EPS) {
            Err(LpError::Unbounded)
        } else {
            Ok(vec![0.0; n])
        };
    }

    // ---- Equilibration: scale rows then columns to unit max-norm. ----
    let mut sa = a.clone();
    let mut sb = b.to_vec();
    for (i, sbi) in sb.iter_mut().enumerate() {
        let r = vecops::norm_inf(sa.row(i));
        if r > 0.0 && !(0.25..=4.0).contains(&r) {
            let inv = 1.0 / r;
            vecops::scale_in_place(inv, sa.row_mut(i));
            *sbi *= inv;
        }
    }
    let mut col_scale = vec![1.0f64; n];
    for (j, s) in col_scale.iter_mut().enumerate() {
        let c = (0..m).fold(0.0f64, |acc, i| acc.max(sa[(i, j)].abs()));
        if c > 0.0 && !(0.25..=4.0).contains(&c) {
            *s = 1.0 / c;
            for i in 0..m {
                sa[(i, j)] *= *s;
            }
        }
    }
    let scaled_costs: Vec<f64> = costs.iter().zip(&col_scale).map(|(c, s)| c * s).collect();
    let mut pivots = 0usize;
    let mut x = solve_standard_unscaled(&scaled_costs, &sa, &sb, &mut pivots)?;
    for (xj, s) in x.iter_mut().zip(&col_scale) {
        *xj *= s;
    }
    Ok(x)
}

/// Core two-phase solve on an **already equilibrated** system; entry point
/// of the [`DenseTableau`](crate::DenseTableau) backend, which receives
/// scaled systems from the session pipeline. Adds the pivots spent to
/// `pivots`.
pub(crate) fn solve_standard_unscaled(
    costs: &[f64],
    a: &Matrix,
    b: &[f64],
    pivots: &mut usize,
) -> Result<Vec<f64>, LpError> {
    let m = a.rows();
    let n = a.cols();

    if m == 0 {
        return if costs.iter().any(|&c| c < -EPS) {
            Err(LpError::Unbounded)
        } else {
            Ok(vec![0.0; n])
        };
    }

    // ---- Phase 1: artificial columns n..n+m with identity basis. ----
    let mut t = Tableau::new(a, b, n + m);
    for i in 0..m {
        t.body[(i, n + i)] = 1.0;
        t.basis[i] = n + i;
    }
    let phase1_costs: Vec<f64> = (0..n + m).map(|j| if j < n { 0.0 } else { 1.0 }).collect();
    t.install_costs(&phase1_costs);
    t.run()?;
    let b_norm = b.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()));
    if t.objective_value() > 1e-7 * (1.0 + b_norm) {
        return Err(LpError::Infeasible);
    }
    // Pivot lingering artificials out of the basis where possible.
    for i in 0..m {
        if t.basis[i] >= n {
            // When every real column is zero on this row, the row is
            // redundant: it keeps its artificial basic at value 0,
            // harmless as long as the artificial never re-enters —
            // enforced below by cost.
            if let Some(j) = (0..n).find(|&j| t.body[(i, j)].abs() > 1e-7) {
                t.pivot(i, j);
            }
        }
    }

    // ---- Phase 2: real costs; artificials are blocked from entering. ----
    let mut phase2_costs = costs.to_vec();
    phase2_costs.extend(std::iter::repeat_n(0.0, m));
    t.banned_from = n;
    t.install_costs(&phase2_costs);
    t.run()?;
    *pivots += t.pivots;

    let mut x = vec![0.0; n];
    for i in 0..m {
        if t.basis[i] < n {
            x[t.basis[i]] = t.rhs[i];
        }
    }
    Ok(x)
}

/// A simplex tableau: constraint body, right-hand side, reduced-cost row and
/// the current basis.
struct Tableau {
    body: Matrix,
    rhs: Vec<f64>,
    /// Reduced costs `z_j`; entering columns have `z_j < -EPS`.
    reduced: Vec<f64>,
    /// Negated objective value (tableau convention).
    obj: f64,
    basis: Vec<usize>,
    /// Columns `>= banned_from` may never enter the basis (artificials in
    /// phase 2).
    banned_from: usize,
    /// Total pivots performed, for solver-session statistics.
    pivots: usize,
    /// Scratch copy of the (scaled) pivot row so the row eliminations can
    /// run through `vecops::axpy` while the matrix row being updated is
    /// mutably borrowed.
    scratch: Vec<f64>,
}

impl Tableau {
    fn new(a: &Matrix, b: &[f64], total_cols: usize) -> Self {
        let m = a.rows();
        let mut body = Matrix::zeros(m, total_cols);
        for i in 0..m {
            body.row_mut(i)[..a.cols()].copy_from_slice(a.row(i));
        }
        Tableau {
            body,
            rhs: b.to_vec(),
            reduced: vec![0.0; total_cols],
            obj: 0.0,
            basis: vec![usize::MAX; m],
            banned_from: total_cols,
            pivots: 0,
            scratch: Vec::with_capacity(total_cols),
        }
    }

    /// Recomputes the reduced-cost row for new objective coefficients while
    /// keeping the current basis (prices out the basic columns).
    fn install_costs(&mut self, costs: &[f64]) {
        self.reduced.copy_from_slice(costs);
        self.obj = 0.0;
        for i in 0..self.basis.len() {
            let bj = self.basis[i];
            let cb = costs[bj];
            if cb != 0.0 {
                vecops::axpy(-cb, self.body.row(i), &mut self.reduced);
                self.obj -= cb * self.rhs[i];
            }
        }
    }

    fn objective_value(&self) -> f64 {
        -self.obj
    }

    /// Pivots on `(row, col)`: `col` enters the basis, the old basic of
    /// `row` leaves.
    fn pivot(&mut self, row: usize, col: usize) {
        self.pivots += 1;
        let pv = self.body[(row, col)];
        debug_assert!(pv.abs() > EPS, "pivot on (near-)zero element");
        let inv = 1.0 / pv;
        vecops::scale_in_place(inv, self.body.row_mut(row));
        self.rhs[row] *= inv;
        // Snapshot the scaled pivot row once: the eliminations below
        // mutably borrow the target rows, and the kernel-layer axpy wants
        // the source as one contiguous slice anyway.
        self.scratch.clear();
        self.scratch.extend_from_slice(self.body.row(row));
        let pivot_rhs = self.rhs[row];
        for i in 0..self.body.rows() {
            if i != row {
                let f = self.body[(i, col)];
                if f.abs() > EPS {
                    vecops::axpy(-f, &self.scratch, self.body.row_mut(i));
                    self.rhs[i] -= f * pivot_rhs;
                    if self.rhs[i].abs() < 1e-12 {
                        self.rhs[i] = 0.0;
                    }
                }
            }
        }
        let f = self.reduced[col];
        if f.abs() > EPS {
            vecops::axpy(-f, &self.scratch, &mut self.reduced);
            self.obj -= f * pivot_rhs;
        }
        self.basis[row] = col;
    }

    /// Runs simplex iterations until optimality.
    fn run(&mut self) -> Result<(), LpError> {
        let mut stalled = 0usize;
        for _ in 0..MAX_PIVOTS {
            let bland = stalled >= DEGENERACY_PATIENCE;
            let Some(col) = self.entering_column(bland, EPS) else {
                return Ok(()); // optimal
            };
            let Some(row) = self.leaving_row(col, bland) else {
                // No ratio-test row for this column. On equality-heavy
                // systems, elimination noise leaves columns with reduced
                // costs barely past the tolerance; declaring the LP
                // unbounded on those turns a rounding artifact into a
                // wrong verdict. Re-price against a much stricter
                // threshold: a genuinely improving ray keeps a clearly
                // negative reduced cost; noise does not.
                let Some(col2) = self.entering_column(bland, 1e-6) else {
                    return Ok(()); // optimal within tolerance
                };
                if self.leaving_row(col2, bland).is_none() {
                    return Err(LpError::Unbounded);
                }
                // A different, pivotable column improves strictly; take it.
                let row2 = self.leaving_row(col2, bland).expect("checked above");
                self.pivot(row2, col2);
                continue;
            };
            let before = self.obj;
            self.pivot(row, col);
            if (self.obj - before).abs() <= 1e-12 {
                stalled += 1;
            } else {
                stalled = 0;
            }
        }
        Err(LpError::PivotLimit)
    }

    /// Dantzig (most negative reduced cost) or Bland (lowest index)
    /// pricing, considering only columns with reduced cost below `-tol`.
    fn entering_column(&self, bland: bool, tol: f64) -> Option<usize> {
        let limit = self.banned_from;
        if bland {
            (0..limit).find(|&j| self.reduced[j] < -tol)
        } else {
            let mut best = None;
            let mut best_val = -tol;
            for j in 0..limit {
                if self.reduced[j] < best_val {
                    best_val = self.reduced[j];
                    best = Some(j);
                }
            }
            best
        }
    }

    /// Minimum-ratio test; under Bland's rule ties break toward the lowest
    /// basis index.
    fn leaving_row(&self, col: usize, bland: bool) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.body.rows() {
            let coeff = self.body[(i, col)];
            if coeff > EPS {
                let ratio = self.rhs[i] / coeff;
                let better = match best {
                    None => true,
                    Some((bi, br)) => {
                        ratio < br - 1e-12
                            || (ratio < br + 1e-12
                                && if bland {
                                    self.basis[i] < self.basis[bi]
                                } else {
                                    coeff > self.body[(bi, col)]
                                })
                    }
                };
                if better {
                    best = Some((i, ratio));
                }
            }
        }
        best.map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_form_direct() {
        // min -x1 - x2 s.t. x1 + x2 + s = 1 -> optimum -1 at any vertex.
        let a = Matrix::from_rows(vec![vec![1.0, 1.0, 1.0]]);
        let x = solve_standard_dense(&[-1.0, -1.0, 0.0], &a, &[1.0]).unwrap();
        assert!((x[0] + x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_constraint_matrix() {
        let a = Matrix::zeros(0, 2);
        let x = solve_standard_dense(&[1.0, 1.0], &a, &[]).unwrap();
        assert_eq!(x, vec![0.0, 0.0]);
        assert_eq!(
            solve_standard_dense(&[-1.0, 0.0], &a, &[]).unwrap_err(),
            LpError::Unbounded
        );
    }

    #[test]
    fn redundant_zero_row() {
        // Second row is 0 = 0 after phase 1; must not break phase 2.
        let a = Matrix::from_rows(vec![vec![1.0, 1.0], vec![2.0, 2.0]]);
        let x = solve_standard_dense(&[1.0, 0.0], &a, &[1.0, 2.0]).unwrap();
        assert!((x[0] + x[1] - 1.0).abs() < 1e-9);
        assert!(x[0].abs() < 1e-9, "cost pushes x0 to zero");
    }
}
