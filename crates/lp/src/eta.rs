//! Product-form eta file and the LU-backed basis representation.
//!
//! After a basis exchange `B' = B·E` — column `r` of the identity
//! replaced by the ftran'd entering column `u` — the dense-inverse path
//! rewrites every row of `B⁻¹` (O(m²)). The product form instead
//! **appends one eta vector**: `B'⁻¹ = E⁻¹·B⁻¹`, so a pivot costs
//! O(nnz(u)) and the solves simply run through the eta stack:
//!
//! * ftran: `x = E_k⁻¹ ⋯ E_1⁻¹ · (LU-ftran b)` — etas applied oldest
//!   first after the factor solve;
//! * btran: `y = LU-btran (E_1⁻ᵀ ⋯ E_k⁻ᵀ · c)` — etas applied newest
//!   first before the factor solve.
//!
//! Applying `E⁻¹` touches only the eta's nonzeros, and an eta whose
//! pivot component in the running vector is zero is skipped outright —
//! with the sparse right-hand sides of the synthesis LPs most are.
//!
//! The stack cannot grow forever: each eta adds nonzeros to every later
//! solve and compounds rounding error. [`LuBasis`] therefore triggers
//! refactorization (a fresh [`LuFactors`] run, emptying the stack) on
//! any of three conditions instead of the dense path's fixed pivot
//! period:
//!
//! * **eta count** — more than [`MAX_ETAS`] updates since the last
//!   factorization;
//! * **fill-in** — the stack's nonzeros exceed [`FILL_FACTOR`] × the
//!   factor nonzeros, so solves would spend longer in the etas than in
//!   the factors themselves;
//! * **accuracy** — a pivot element below the healthy threshold entered
//!   the file; dividing by a near-zero amplifies accumulated error, and
//!   the next factorization from scratch resets it.

use crate::lu::LuFactors;
use crate::revised::BasisRepr;
use crate::CscMatrix;
use qava_linalg::vecops;

/// Eta-count refactorization threshold (matches the dense path's
/// refactorization cadence so both representations see comparable
/// error-accumulation windows).
const MAX_ETAS: usize = 64;

/// Fill-in threshold: refactorize when the eta stack holds more than
/// this multiple of the LU factors' nonzeros.
const FILL_FACTOR: usize = 2;

/// Pivot magnitude below which an update is considered accuracy-risky;
/// mirrors `PIVOT_TOL` in the ratio test of [`crate::revised`].
const SHAKY_PIVOT: f64 = 1e-7;

/// One product-form update: the entering column `u` (in basis-slot
/// space) that replaced slot `row`. The pivot component `u[row]` is held
/// apart from the off-pivot nonzeros.
#[derive(Debug, Clone)]
struct Eta {
    row: usize,
    pivot: f64,
    idx: Vec<usize>,
    vals: Vec<f64>,
}

/// A stack of product-form updates since the last factorization.
#[derive(Debug, Clone, Default)]
pub(crate) struct EtaFile {
    etas: Vec<Eta>,
    nnz: usize,
}

impl EtaFile {
    /// Records the basis exchange at `row` with direction `u`;
    /// `support` lists the indices of `u`'s (meaningfully) nonzero
    /// entries in increasing order.
    pub(crate) fn push(&mut self, row: usize, u: &[f64], support: &[usize]) {
        let mut idx = Vec::with_capacity(support.len());
        let mut vals = Vec::with_capacity(support.len());
        for &i in support {
            if i != row {
                idx.push(i);
                vals.push(u[i]);
            }
        }
        self.nnz += idx.len() + 1;
        self.etas.push(Eta { row, pivot: u[row], idx, vals });
    }

    /// Updates since the last [`clear`](Self::clear).
    pub(crate) fn len(&self) -> usize {
        self.etas.len()
    }

    /// Total stored nonzeros (pivots included) — the fill-in measure.
    pub(crate) fn nnz(&self) -> usize {
        self.nnz
    }

    /// Empties the file (after a refactorization).
    pub(crate) fn clear(&mut self) {
        self.etas.clear();
        self.nnz = 0;
    }

    /// Applies `E_k⁻¹ ⋯ E_1⁻¹` to `x` (the ftran tail): oldest eta
    /// first. Etas whose pivot component of `x` is zero are skipped.
    pub(crate) fn apply(&self, x: &mut [f64]) {
        for eta in &self.etas {
            let xr = x[eta.row];
            if xr == 0.0 {
                continue;
            }
            let t = xr / eta.pivot;
            x[eta.row] = t;
            vecops::scatter_axpy(-t, &eta.idx, &eta.vals, x);
        }
    }

    /// Applies `E_1⁻ᵀ ⋯ E_k⁻ᵀ` to `c` (the btran head): newest eta
    /// first, one gather dot per eta.
    pub(crate) fn apply_transpose(&self, c: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let s = vecops::gather_dot(&eta.idx, &eta.vals, c);
            c[eta.row] = (c[eta.row] - s) / eta.pivot;
        }
    }

    /// Transposed application specialized to a unit start vector `eᵢ` —
    /// the btran behind [`BasisRepr::binv_row`](crate::revised::BasisRepr),
    /// i.e. the pricing row `ρ = eᵣᵀB⁻¹` of the dual-simplex ratio test.
    /// While the running vector is still the singleton `{i}`, an eta only
    /// acts if its pivot row *is* `i` (a scalar divide) or its off-pivot
    /// support *contains* `i` — an O(log nnz) membership probe on the
    /// sorted index list instead of a full gather dot. The generic
    /// newest-first loop takes over at the first eta that spreads the
    /// support. `c` must hold `eᵢ` on entry.
    pub(crate) fn apply_transpose_unit(&self, i: usize, c: &mut [f64]) {
        let mut k = self.etas.len();
        while k > 0 {
            let eta = &self.etas[k - 1];
            if eta.idx.binary_search(&i).is_ok() {
                break; // support is about to spread beyond {i}
            }
            if eta.row == i {
                c[i] /= eta.pivot;
            }
            k -= 1;
        }
        for eta in self.etas[..k].iter().rev() {
            let s = vecops::gather_dot(&eta.idx, &eta.vals, c);
            c[eta.row] = (c[eta.row] - s) / eta.pivot;
        }
    }
}

/// The LU-factorized basis representation: [`LuFactors`] for the last
/// refactorization point plus the [`EtaFile`] of updates since — the
/// engine behind the `lu` backend ([`crate::LuSimplex`]).
#[derive(Debug, Clone)]
pub(crate) struct LuBasis {
    m: usize,
    lu: LuFactors,
    etas: EtaFile,
    /// An accuracy-risky pivot entered the eta file; refactorize at the
    /// next opportunity.
    shaky: bool,
}

impl LuBasis {
    fn solve_scattered(&self, mut x: Vec<f64>) -> Vec<f64> {
        let mut scratch = Vec::new();
        self.lu.ftran(&mut x, &mut scratch);
        self.etas.apply(&mut x);
        x
    }
}

impl BasisRepr for LuBasis {
    fn identity(m: usize) -> Self {
        LuBasis { m, lu: LuFactors::identity(m), etas: EtaFile::default(), shaky: false }
    }

    fn refactor(&mut self, a: &CscMatrix, n: usize, basis: &[usize]) -> bool {
        let cols: Vec<(Vec<usize>, Vec<f64>)> =
            basis.iter().map(|&j| crate::revised::basis_col(a, n, j)).collect();
        match LuFactors::factorize(self.m, &cols) {
            Some(lu) => {
                self.lu = lu;
                self.etas.clear();
                self.shaky = false;
                true
            }
            None => false,
        }
    }

    fn ftran_col(&self, idx: &[usize], vals: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.m];
        for (&r, &v) in idx.iter().zip(vals) {
            x[r] = v;
        }
        self.solve_scattered(x)
    }

    fn ftran_dense(&self, rhs: &[f64]) -> Vec<f64> {
        self.solve_scattered(rhs.to_vec())
    }

    fn btran_dense(&self, cb: &[f64]) -> Vec<f64> {
        let mut c = cb.to_vec();
        self.etas.apply_transpose(&mut c);
        self.lu.btran(&c)
    }

    fn binv_row(&self, i: usize) -> Vec<f64> {
        // Unit-vector btran through the singleton-aware eta fast path
        // (the dual ratio test prices one such row per dual pivot).
        let mut e = vec![0.0; self.m];
        e[i] = 1.0;
        self.etas.apply_transpose_unit(i, &mut e);
        self.lu.btran(&e)
    }

    fn update(
        &mut self,
        row: usize,
        u: &[f64],
        support: &[usize],
        _col_idx: &[usize],
        _col_vals: &[f64],
    ) {
        if u[row].abs() < SHAKY_PIVOT || crate::faults::trip(crate::faults::Site::UpdatePivot) {
            self.shaky = true;
        }
        self.etas.push(row, u, support);
    }

    fn should_refactor(&self, _iteration: usize) -> bool {
        self.shaky
            || self.etas.len() >= MAX_ETAS
            || self.etas.nnz() > FILL_FACTOR * self.lu.nnz()
    }

    /// Optimality claimed through a non-empty eta stack must be
    /// re-derived from fresh factors: accumulated product-form error has
    /// been observed to both mask improving columns and corrupt the
    /// reported `x_B` (the `drift_regression` instance), and the final
    /// refactorization also hands the session an exactly-consistent
    /// basis for the warm-start cache.
    fn trusts_incremental_optimal(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qava_linalg::Matrix;

    fn basis_csc(dense: Vec<Vec<f64>>) -> CscMatrix {
        CscMatrix::from_dense(&Matrix::from_rows(dense))
    }

    /// Reference B⁻¹ for a basis assembled the same way `refactor` does.
    fn dense_inverse(a: &CscMatrix, n: usize, basis: &[usize]) -> Matrix {
        let m = a.rows();
        let mut bm = Matrix::zeros(m, m);
        for (k, &j) in basis.iter().enumerate() {
            if j < n {
                let (idx, vals) = a.col(j);
                for (&r, &v) in idx.iter().zip(vals) {
                    bm[(r, k)] = v;
                }
            } else {
                bm[(j - n, k)] = 1.0;
            }
        }
        bm.inverse().expect("test basis nonsingular")
    }

    #[test]
    fn refactor_and_solves_match_dense_inverse() {
        let a = basis_csc(vec![
            vec![2.0, 0.0, 1.0, 1.0],
            vec![0.0, 3.0, 0.0, -1.0],
            vec![1.0, 1.0, 1.0, 0.0],
        ]);
        let basis = vec![0usize, 3, 2];
        let mut repr = LuBasis::identity(3);
        assert!(repr.refactor(&a, 4, &basis));
        let inv = dense_inverse(&a, 4, &basis);
        let b = vec![1.0, 2.0, -1.0];
        let x = repr.ftran_dense(&b);
        let want = inv.mul_vec(&b);
        for (got, w) in x.iter().zip(&want) {
            assert!((got - w).abs() < 1e-9, "{got} vs {w}");
        }
        let y = repr.btran_dense(&b);
        let want_y = inv.mul_vec_transposed(&b);
        for (got, w) in y.iter().zip(&want_y) {
            assert!((got - w).abs() < 1e-9, "{got} vs {w}");
        }
        for i in 0..3 {
            let row = repr.binv_row(i);
            for (j, got) in row.iter().enumerate() {
                assert!((got - inv[(i, j)]).abs() < 1e-9, "row {i} col {j}");
            }
        }
    }

    #[test]
    fn artificial_columns_are_unit_columns() {
        let a = basis_csc(vec![vec![5.0, 1.0], vec![0.0, 2.0]]);
        // Basis = {column 1, artificial of row 0} (artificials are n..).
        let mut repr = LuBasis::identity(2);
        assert!(repr.refactor(&a, 2, &[1, 2]));
        let inv = dense_inverse(&a, 2, &[1, 2]);
        let x = repr.ftran_col(&[0], &[1.0]);
        let want = inv.mul_vec(&[1.0, 0.0]);
        for (got, w) in x.iter().zip(&want) {
            assert!((got - w).abs() < 1e-9);
        }
    }

    #[test]
    fn eta_updates_track_explicit_reinversion() {
        // Start from the identity basis of a 3-row system, pivot a real
        // column in, and compare every solve against a from-scratch
        // factorization of the updated basis.
        let a = basis_csc(vec![
            vec![1.0, 2.0, 0.0],
            vec![0.0, 1.0, 1.0],
            vec![1.0, 0.0, 2.0],
        ]);
        let n = 3;
        let mut incremental = LuBasis::identity(3);
        let mut basis = vec![n, n + 1, n + 2];

        // Pivot column 1 into slot 0, then column 2 into slot 2 — the
        // direction u is B⁻¹·a_j with the *current* representation.
        for &(col, slot) in &[(1usize, 0usize), (2, 2)] {
            let (idx, vals) = a.col(col);
            let u = incremental.ftran_col(idx, vals);
            let support: Vec<usize> =
                (0..3).filter(|&i| u[i].abs() > qava_linalg::EPS).collect();
            incremental.update(slot, &u, &support, idx, vals);
            basis[slot] = col;

            let mut fresh = LuBasis::identity(3);
            assert!(fresh.refactor(&a, n, &basis));
            let b = vec![0.5, -1.0, 2.0];
            let xi = incremental.ftran_dense(&b);
            let xf = fresh.ftran_dense(&b);
            for (g, w) in xi.iter().zip(&xf) {
                assert!((g - w).abs() < 1e-9, "ftran diverged: {g} vs {w}");
            }
            let yi = incremental.btran_dense(&b);
            let yf = fresh.btran_dense(&b);
            for (g, w) in yi.iter().zip(&yf) {
                assert!((g - w).abs() < 1e-9, "btran diverged: {g} vs {w}");
            }
        }
        assert_eq!(incremental.etas.len(), 2);
        assert!(incremental.etas.nnz() >= 2);
    }

    #[test]
    fn unit_btran_fast_path_matches_generic_with_live_etas() {
        // Same update chain as `eta_updates_track_explicit_reinversion`,
        // but checks the binv_row fast path (singleton-skip transposed
        // etas) against the generic dense btran for every pricing row
        // while the eta stack is non-empty.
        let a = basis_csc(vec![
            vec![1.0, 2.0, 0.0],
            vec![0.0, 1.0, 1.0],
            vec![1.0, 0.0, 2.0],
        ]);
        let mut repr = LuBasis::identity(3);
        for &(col, slot) in &[(1usize, 0usize), (2, 2)] {
            let (idx, vals) = a.col(col);
            let u = repr.ftran_col(idx, vals);
            let support: Vec<usize> =
                (0..3).filter(|&i| u[i].abs() > qava_linalg::EPS).collect();
            repr.update(slot, &u, &support, idx, vals);
        }
        assert_eq!(repr.etas.len(), 2, "fast path must see live etas");
        for i in 0..3 {
            let fast = repr.binv_row(i);
            let mut e = vec![0.0; 3];
            e[i] = 1.0;
            let generic = repr.btran_dense(&e);
            for (g, w) in fast.iter().zip(&generic) {
                assert!((g - w).abs() < 1e-12, "row {i}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn refactor_thresholds_fire() {
        let a = basis_csc(vec![vec![1.0]]);
        let mut repr = LuBasis::identity(1);
        assert!(repr.refactor(&a, 1, &[0]));
        assert!(!repr.should_refactor(0));
        // Eta-count threshold.
        for _ in 0..MAX_ETAS {
            repr.update(0, &[2.0], &[0], &[0], &[1.0]);
        }
        assert!(repr.should_refactor(0));
        assert!(repr.refactor(&a, 1, &[0]), "refactor resets the eta stack");
        assert!(!repr.should_refactor(0));
        // Accuracy threshold: one tiny pivot is enough.
        repr.update(0, &[1e-9], &[0], &[0], &[1.0]);
        assert!(repr.should_refactor(0));
        // Singular refactorization keeps the incremental state.
        let singular = basis_csc(vec![vec![0.0]]);
        assert!(!repr.refactor(&singular, 1, &[0]));
        assert!(repr.should_refactor(0), "state kept after failed refactor");
    }
}
