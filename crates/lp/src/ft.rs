//! Forrest–Tomlin basis updates: spike swaps inside the LU factors.
//!
//! The product-form eta file ([`crate::eta`]) leaves the factors of the
//! last refactorization untouched and pays for it at solve time: every
//! ftran/btran walks L, U, *and* the whole eta stack, so between
//! refactorizations the solve cost is O(nnz(LU) + nnz(etas)) and grows
//! with every pivot. The Forrest–Tomlin update instead edits **U
//! itself** on each basis exchange, so solves stay O(nnz(L) + nnz(U))
//! with only a thin stack of sparse *row* etas on the side:
//!
//! 1. the U column of the leaving variable is deleted and the ftran'd
//!    entering column — un-solved back into the **spike** `w = U·u`, the
//!    partially eliminated column the factors see — takes its place;
//! 2. the pivot's row and column cycle to the last position of the
//!    factor ordering (a permutation update, no data movement in L);
//! 3. the now out-of-place **spike row** (the old row of the leaving
//!    pivot) is eliminated against the columns inside the permutation
//!    window by a transposed triangular solve, and the multipliers are
//!    stored as one sparse row eta ([`vecops::masked_gather_dot`] is
//!    this elimination's kernel).
//!
//! After step 3 the updated U is upper triangular again in the rotated
//! ordering, with the new diagonal `d = w_t − rᵀw`.
//!
//! **Indexing discipline.** Everything mutable is keyed by the *original
//! pivot row* of a U column's diagonal, never by its position: the FT
//! rotation renumbers positions on every update, but the (pivot row ↔
//! basis slot) pairing of each diagonal survives the rotation unchanged.
//! Row-keyed storage therefore makes stored row etas permutation-stable
//! — they are written once and never renumbered — while the position
//! order lives in two small permutation vectors (`order`, `pos_of`).
//!
//! **Refactorization triggers.** The eta file refactorizes on eta count
//! and stack fill-in; FT has no eta stack to speak of, so its triggers
//! move into the factors themselves:
//!
//! * **spike-pivot magnitude** — FT has no pivoting freedom: the new
//!   diagonal is dictated by the exchange, and a small `|d|` poisons
//!   every later solve. Anything below [`SHAKY_PIVOT`] schedules a fresh
//!   factorization (which re-pivots with full Markowitz/threshold
//!   freedom);
//! * **U fill-in growth** — replaced columns and eliminated spike rows
//!   accumulate fill; once the live factors plus row etas outgrow
//!   [`FILL_FACTOR`] × the freshly factorized size, refactorizing is
//!   cheaper than dragging the fill through every solve;
//! * **update count** — [`MAX_UPDATES`] bounds rounding-error
//!   accumulation outright, matching the eta file's cadence so the two
//!   schemes race at equal refactorization counts on the production
//!   workloads (`lp/kernel/basis_update*` in `benches/lp_kernel.rs`
//!   additionally measures them on identical longer chains, where FT's
//!   flat solve cost pulls away). The accuracy cross-check below
//!   refactorizes adaptively well before the budget when the numbers
//!   degrade.
//!
//! Optimality/unboundedness verdicts are still only trusted from a fresh
//! factorization ([`BasisRepr::trusts_incremental_optimal`] is `false`),
//! exactly like the eta engine — the drift-verification machinery is the
//! backstop for both update schemes, and the conformance corpus
//! (`tests/corpus.rs`) races them against each other and the dense
//! oracle.

use crate::lu::{LuFactors, SparseCol};
use crate::revised::{BasisRepr, UpdateStability};
use crate::CscMatrix;
use qava_linalg::vecops;
use std::cell::RefCell;

/// Spike-pivot magnitude below which the update is accuracy-risky and
/// the next opportunity refactorizes; mirrors the eta file's
/// `SHAKY_PIVOT` so the two update schemes see comparable accuracy
/// windows. Shared with the Bartels–Golub engine ([`crate::bg`]) so the
/// two column-replacement schemes see identical accuracy windows.
pub(crate) const SHAKY_PIVOT: f64 = 1e-7;

/// Fill-in growth trigger: refactorize when the live U plus the row-eta
/// stack outgrow this multiple of the factors' size at the last
/// refactorization.
pub(crate) const FILL_FACTOR: usize = 2;

/// Relative disagreement between the eliminated diagonal and the one the
/// determinant identity predicts (`d = u[row]·U_tt`) beyond which the
/// update is deemed accuracy-compromised — cancellation in the spike-row
/// elimination or drift in the recovered spike — and the next
/// opportunity refactorizes. 1e-6 leaves ~9 clean digits, far inside the
/// 1e-7 tolerances the pivot loop itself runs on.
pub(crate) const ACCURACY_DRIFT: f64 = 1e-6;

/// Backstop on updates between refactorizations.
pub(crate) const MAX_UPDATES: usize = 64;

/// The spike of the most recent [`BasisRepr::ftran_col`], kept so
/// [`BasisRepr::update`] can reuse it: the simplex always ftrans the
/// entering column immediately before pivoting on it, and the spike —
/// the column carried through L and the row etas, short of U — is an
/// intermediate of exactly that solve. `update` validates the cache
/// against the raw column data and recomputes on a mismatch, so reuse
/// is a pure optimization, never a correctness assumption.
#[derive(Debug, Clone, Default)]
pub(crate) struct SpikeCache {
    pub(crate) col_idx: Vec<usize>,
    pub(crate) col_vals: Vec<f64>,
    pub(crate) spike: Vec<f64>,
    pub(crate) valid: bool,
}

impl SpikeCache {
    pub(crate) fn matches(&self, idx: &[usize], vals: &[f64]) -> bool {
        self.valid && self.col_idx == idx && self.col_vals == vals
    }
}

/// One stored spike-row elimination: row `row` (a row key) had the
/// multipliers `col` (row-keyed) eliminated into it. Applied to a
/// forward solve as `x[row] -= col · x`, transposed as
/// `x -= x[row] · col`.
#[derive(Debug, Clone)]
pub(crate) struct RowEta {
    pub(crate) row: usize,
    pub(crate) col: SparseCol,
    /// Support bitmask of `col.idx` over row keys. A forward solve
    /// intersects it with the running nonzero-row mask of the solve
    /// vector: no overlap means the gather is provably zero and the eta
    /// is skipped outright. This is the row-eta analogue of the eta
    /// file's one-component pivot check — a *row* operation reads many
    /// components, so restoring sparse-RHS skipping takes a set
    /// intersection instead of a single load.
    pub(crate) mask: Vec<u64>,
}

/// Number of `u64` words a row-key bitmask over `m` rows needs.
pub(crate) fn mask_words(m: usize) -> usize {
    m.div_ceil(64)
}

/// Sets `row`'s bit.
pub(crate) fn mask_set(mask: &mut [u64], row: usize) {
    mask[row >> 6] |= 1u64 << (row & 63);
}

/// Reads `row`'s bit.
pub(crate) fn mask_get(mask: &[u64], row: usize) -> bool {
    mask[row >> 6] & (1u64 << (row & 63)) != 0
}

/// Forces `row`'s bit to `bit`.
pub(crate) fn mask_assign(mask: &mut [u64], row: usize, bit: bool) {
    if bit {
        mask[row >> 6] |= 1u64 << (row & 63);
    } else {
        mask[row >> 6] &= !(1u64 << (row & 63));
    }
}

/// Whether two equally sized masks share any set bit.
pub(crate) fn masks_intersect(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).any(|(&x, &y)| x & y != 0)
}

/// The Forrest–Tomlin basis representation behind the `lu-ft` backend
/// ([`crate::LuFtSimplex`]): frozen L factors plus a mutable, row-keyed
/// U that absorbs each basis exchange as a spike swap.
#[derive(Debug, Clone)]
pub(crate) struct FtBasis {
    m: usize,
    /// Factors of the last refactorization. Only the L half (plus its
    /// row permutation) is used after [`install`](Self::install) copies
    /// U out into the mutable row-keyed form below.
    lu: LuFactors,
    /// Position → row key of the diagonal at that position.
    order: Vec<usize>,
    /// Row key → current position (inverse of `order`).
    pos_of: Vec<usize>,
    /// Row key → basis slot of the column whose diagonal lives on that
    /// row. Stable across updates: the entering variable takes over the
    /// leaving variable's slot *and* its diagonal row.
    slot_of: Vec<usize>,
    /// Basis slot → row key (inverse of `slot_of`).
    key_of_slot: Vec<usize>,
    /// Row key → above-diagonal entries of that diagonal's U column,
    /// themselves row-keyed (every entry's position is smaller than the
    /// diagonal's — the triangularity invariant the update maintains).
    u_cols: Vec<SparseCol>,
    /// Row key → diagonal value.
    u_diag: Vec<f64>,
    /// Stored U nonzeros, diagonals included.
    u_nnz: usize,
    /// `nnz(L) + nnz(U)` right after the last refactorization — the
    /// yardstick of the fill-in trigger.
    base_nnz: usize,
    /// Spike-row eliminations since the last refactorization, oldest
    /// first.
    etas: Vec<RowEta>,
    eta_nnz: usize,
    updates: usize,
    /// A spike pivot below [`SHAKY_PIVOT`] was accepted; refactorize at
    /// the next opportunity.
    shaky: bool,
    /// Row-keyed spike workspace; all-zero between updates.
    spike: Vec<f64>,
    /// Row-keyed elimination-multiplier workspace; all-zero between
    /// updates (the masked gather only ever reads inside the active
    /// window, but the zero discipline keeps successive updates
    /// independent).
    relim: Vec<f64>,
    /// Row key → number of stored off-diagonal U entries lying on that
    /// row (across all columns). Lets the spike-row deletion stop as
    /// soon as every entry is found — usually immediately, since most
    /// rows carry no off-diagonal entries at all.
    row_nnz: Vec<usize>,
    /// See [`SpikeCache`].
    spike_cache: RefCell<SpikeCache>,
    /// Reusable nonzero-row mask for [`apply_etas_forward`]
    /// (`RefCell`: the solve paths take `&self`); rebuilt at the start
    /// of every use, so no cross-call state.
    live_mask: RefCell<Vec<u64>>,
    /// Updates whose determinant-identity cross-check disagreed with the
    /// eliminated diagonal — accuracy-triggered refactorizations.
    /// Cumulative over the engine's lifetime ([`install`](Self::install)
    /// never resets it): `RunTelemetry` polls it once per run via
    /// [`BasisRepr::stability`], and each run builds a fresh engine.
    acc_refactors: usize,
}

impl FtBasis {
    /// Adopts a fresh factorization: copies U into the mutable row-keyed
    /// form, resets permutations, etas and counters.
    fn install(&mut self, lu: LuFactors) {
        let m = self.m;
        self.order.clear();
        self.order.extend_from_slice(&lu.pos_row);
        self.base_nnz = lu.nnz();
        self.u_nnz = m;
        for k in 0..m {
            let r = lu.pos_row[k];
            self.pos_of[r] = k;
            self.slot_of[r] = lu.col_order[k];
            self.key_of_slot[lu.col_order[k]] = r;
            self.u_diag[r] = lu.diag[k];
            // Translate the column's entries from position indexing to
            // row keys.
            let uc = &lu.u_cols[k];
            let entries: Vec<(usize, f64)> =
                uc.idx.iter().zip(&uc.vals).map(|(&t, &v)| (lu.pos_row[t], v)).collect();
            self.u_nnz += entries.len();
            self.u_cols[r] = SparseCol::from_entries(entries);
        }
        self.row_nnz.iter_mut().for_each(|v| *v = 0);
        for col in &self.u_cols {
            for &rk in &col.idx {
                self.row_nnz[rk] += 1;
            }
        }
        self.lu = lu;
        self.etas.clear();
        self.eta_nnz = 0;
        self.updates = 0;
        self.shaky = false;
        self.spike_cache.borrow_mut().valid = false;
    }

    /// Applies the stored spike-row etas, oldest first, to a vector that
    /// has already been carried through the frozen L part. Each eta's
    /// support mask is intersected with a running nonzero-row mask of
    /// the solve vector, so etas that provably gather zero are skipped —
    /// on the sparse right-hand sides of the pivot loop's column ftrans
    /// most etas are (the L solve confines fill to the columns it
    /// touches). The mask only ever grows: between etas nothing else
    /// writes `x`, and an applied eta adds exactly the one row it
    /// updates, so staying a superset of the true nonzero set is
    /// invariant (cancellation to exact zero just leaves a stale bit).
    fn apply_etas_forward(&self, x: &mut [f64]) {
        if self.etas.is_empty() {
            return;
        }
        let mut live = self.live_mask.borrow_mut();
        live.clear();
        live.resize(mask_words(self.m), 0);
        for (r, &v) in x.iter().enumerate() {
            if v != 0.0 {
                mask_set(&mut live, r);
            }
        }
        for eta in &self.etas {
            if !masks_intersect(&eta.mask, &live) {
                continue;
            }
            let s = vecops::gather_dot(&eta.col.idx, &eta.col.vals, x);
            if s != 0.0 {
                x[eta.row] -= s;
                mask_set(&mut live, eta.row);
            }
        }
    }

    /// Solves `B·z = b` for `b` given dense in row indexing; returns `z`
    /// in basis-slot indexing. When `cache_as` carries the originating
    /// sparse column, the intermediate spike (post-L, post-etas, pre-U)
    /// is stashed for the [`update`](BasisRepr::update) that typically
    /// follows.
    fn solve_forward(&self, mut x: Vec<f64>, cache_as: Option<(&[usize], &[f64])>) -> Vec<f64> {
        // Frozen L, then the spike-row etas oldest first (they sit
        // between L and U by construction), then the mutable U.
        self.lu.l_solve(&mut x);
        self.apply_etas_forward(&mut x);
        if let Some((idx, vals)) = cache_as {
            let mut cache = self.spike_cache.borrow_mut();
            cache.col_idx.clear();
            cache.col_idx.extend_from_slice(idx);
            cache.col_vals.clear();
            cache.col_vals.extend_from_slice(vals);
            cache.spike.clear();
            cache.spike.extend_from_slice(&x);
            cache.valid = true;
        }
        let mut out = vec![0.0; self.m];
        for p in (0..self.m).rev() {
            let r = self.order[p];
            let w = x[r] / self.u_diag[r];
            if w != 0.0 {
                let uc = &self.u_cols[r];
                vecops::scatter_axpy(-w, &uc.idx, &uc.vals, &mut x);
                out[self.slot_of[r]] = w;
            }
        }
        out
    }
}

impl BasisRepr for FtBasis {
    fn identity(m: usize) -> Self {
        let mut repr = FtBasis {
            m,
            lu: LuFactors::identity(m),
            order: Vec::with_capacity(m),
            pos_of: vec![0; m],
            slot_of: vec![0; m],
            key_of_slot: vec![0; m],
            u_cols: vec![SparseCol::default(); m],
            u_diag: vec![1.0; m],
            u_nnz: m,
            base_nnz: m,
            etas: Vec::new(),
            eta_nnz: 0,
            updates: 0,
            shaky: false,
            spike: vec![0.0; m],
            relim: vec![0.0; m],
            row_nnz: vec![0; m],
            spike_cache: RefCell::new(SpikeCache::default()),
            live_mask: RefCell::new(Vec::new()),
            acc_refactors: 0,
        };
        repr.install(LuFactors::identity(m));
        repr
    }

    fn refactor(&mut self, a: &CscMatrix, n: usize, basis: &[usize]) -> bool {
        let cols: Vec<(Vec<usize>, Vec<f64>)> =
            basis.iter().map(|&j| crate::revised::basis_col(a, n, j)).collect();
        match LuFactors::factorize(self.m, &cols) {
            Some(lu) => {
                self.install(lu);
                true
            }
            None => false,
        }
    }

    fn ftran_col(&self, idx: &[usize], vals: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.m];
        for (&r, &v) in idx.iter().zip(vals) {
            x[r] = v;
        }
        self.solve_forward(x, Some((idx, vals)))
    }

    fn ftran_dense(&self, rhs: &[f64]) -> Vec<f64> {
        self.solve_forward(rhs.to_vec(), None)
    }

    fn btran_dense(&self, cb: &[f64]) -> Vec<f64> {
        // Uᵀ forward over positions (row-keyed gather), then the
        // transposed etas newest first, then frozen Lᵀ.
        let mut w = vec![0.0; self.m];
        for p in 0..self.m {
            let r = self.order[p];
            let uc = &self.u_cols[r];
            let s = cb[self.slot_of[r]] - vecops::gather_dot(&uc.idx, &uc.vals, &w);
            w[r] = s / self.u_diag[r];
        }
        for eta in self.etas.iter().rev() {
            let t = w[eta.row];
            if t != 0.0 {
                vecops::scatter_axpy(-t, &eta.col.idx, &eta.col.vals, &mut w);
            }
        }
        self.lu.lt_solve(&mut w);
        w
    }

    fn binv_row(&self, i: usize) -> Vec<f64> {
        // Unit-vector btran — the pricing row `ρ = eᵢᵀB⁻¹` of the dual
        // ratio test (`Revised::run_dual`). The RHS is `eᵢ`, so every Uᵀ
        // position before slot `i`'s diagonal sees a zero RHS entry and
        // gathers only zeros: the forward sweep can start at that
        // diagonal's position instead of position 0.
        let mut w = vec![0.0; self.m];
        let start = self.pos_of[self.key_of_slot[i]];
        for p in start..self.m {
            let r = self.order[p];
            let uc = &self.u_cols[r];
            let rhs = if p == start { 1.0 } else { 0.0 };
            let s = rhs - vecops::gather_dot(&uc.idx, &uc.vals, &w);
            w[r] = s / self.u_diag[r];
        }
        for eta in self.etas.iter().rev() {
            let t = w[eta.row];
            if t != 0.0 {
                vecops::scatter_axpy(-t, &eta.col.idx, &eta.col.vals, &mut w);
            }
        }
        self.lu.lt_solve(&mut w);
        w
    }

    /// The Forrest–Tomlin exchange: slot `row`'s variable leaves, the
    /// column `col_idx`/`col_vals` with ftran'd direction `u` enters.
    fn update(
        &mut self,
        row: usize,
        u: &[f64],
        _support: &[usize],
        col_idx: &[usize],
        col_vals: &[f64],
    ) {
        let m = self.m;
        let rt = self.key_of_slot[row];
        let t = self.pos_of[rt];
        // The determinant identity predicts the new diagonal before any
        // elimination runs: det(B')/det(B) = u[row], and FT changes only
        // one diagonal of U, so d = u[row] · U_tt. The elimination below
        // recomputes d independently; disagreement between the two is a
        // direct measurement of accumulated/cancellation error and flags
        // the update shaky (the Forrest–Tomlin accuracy check).
        let predicted = u[row] * self.u_diag[rt];
        if u[row].abs() < SHAKY_PIVOT || crate::faults::trip(crate::faults::Site::UpdatePivot) {
            // Tiny simplex pivots shrink the diagonal by the same factor
            // and amplify every later solve — the same trigger the eta
            // file applies to its pivot components.
            self.shaky = true;
        }

        // ---- 1. Obtain the spike w = E_k…E_1·L⁻¹·a — the raw entering
        // column carried through the frozen L part and the accumulated
        // row etas, stopping short of U. This is the spike's
        // *definition* (un-solving the direction back as U·u would
        // round-trip through U⁻¹ and U and amplify error by cond(U)),
        // and it is an intermediate of the ftran that chose this column,
        // so the cached copy from that solve almost always serves.
        debug_assert!(self.spike.iter().all(|&v| v == 0.0));
        {
            let mut cache = self.spike_cache.borrow_mut();
            if cache.matches(col_idx, col_vals) {
                // Swap rather than copy: the workspace hands its zeroed
                // buffer to the (now invalidated) cache.
                std::mem::swap(&mut self.spike, &mut cache.spike);
            } else {
                drop(cache);
                let mut spike = std::mem::take(&mut self.spike);
                for (&r, &v) in col_idx.iter().zip(col_vals) {
                    spike[r] = v;
                }
                self.lu.l_solve(&mut spike);
                self.apply_etas_forward(&mut spike);
                self.spike = spike;
            }
        }
        // Any cached spike is stale once U changes below.
        self.spike_cache.borrow_mut().valid = false;

        // ---- 2. Delete the leaving column (the spike replaces it).
        let old_col = std::mem::take(&mut self.u_cols[rt]);
        self.u_nnz -= old_col.nnz() + 1;
        for &rk in &old_col.idx {
            self.row_nnz[rk] -= 1;
        }

        // ---- 3. Delete the spike row from every column inside the
        // window, recording its values — the right-hand side of the
        // elimination solve, read back through the `relim` workspace so
        // the order of discovery does not matter. The row-occupancy
        // count ends the scan as soon as every entry is found (usually
        // immediately: most rows carry no off-diagonal entries).
        // Removal is order-preserving: sorted columns keep every
        // gather/scatter's summation order deterministic and
        // independent of the update history, which keeps replays and
        // the pivot-trace tests exactly reproducible.
        let mut row_keys: Vec<usize> = Vec::new();
        let mut to_find = self.row_nnz[rt];
        for p in t + 1..m {
            if to_find == 0 {
                break;
            }
            let c = self.order[p];
            let col = &mut self.u_cols[c];
            if let Ok(k) = col.idx.binary_search(&rt) {
                self.relim[c] = col.vals[k];
                row_keys.push(c);
                col.idx.remove(k);
                col.vals.remove(k);
                self.u_nnz -= 1;
                to_find -= 1;
            }
        }
        self.row_nnz[rt] = 0;

        // ---- 4. Eliminate the spike row: the multipliers r solve
        // rᵀ·U[window] = rowvec, a transposed triangular solve walked in
        // position order. Only window entries of a column participate —
        // the masked gather keys the cut on `pos_of` — and the walk ends
        // early once the remaining right-hand side is exhausted and no
        // multiplier is live to generate fill (the common case: a
        // near-empty spike row eliminates in a handful of steps).
        let mut eta_entries: Vec<(usize, f64)> = Vec::new();
        if !row_keys.is_empty() {
            let mut remaining = row_keys.len();
            for p in t + 1..m {
                if remaining == 0 && eta_entries.is_empty() {
                    break;
                }
                let c = self.order[p];
                let mut val = self.relim[c];
                if val != 0.0 {
                    // Consume this rowvec entry; `relim[c]` is rewritten
                    // below with the multiplier (or zero).
                    remaining -= 1;
                    self.relim[c] = 0.0;
                }
                if !eta_entries.is_empty() {
                    let uc = &self.u_cols[c];
                    val -=
                        vecops::masked_gather_dot(&uc.idx, &uc.vals, &self.relim, &self.pos_of, t);
                }
                if val != 0.0 {
                    let rj = val / self.u_diag[c];
                    self.relim[c] = rj;
                    eta_entries.push((c, rj));
                }
            }
        }

        // ---- 5. New diagonal d = w_t − rᵀ·w (the fully eliminated
        // last-row, last-column entry). FT has no pivoting freedom here;
        // a small |d| schedules a fresh, freely pivoted factorization.
        let mut d = self.spike[rt];
        for &(c, rj) in &eta_entries {
            d -= rj * self.spike[c];
        }
        let tiny = d.abs() < SHAKY_PIVOT;
        let drifted = (d - predicted).abs() > ACCURACY_DRIFT * (d.abs() + predicted.abs())
            || crate::faults::trip(crate::faults::Site::FtAccuracy);
        if drifted {
            self.acc_refactors += 1;
        }
        if tiny || drifted {
            self.shaky = true;
            // Same diagnostics channel as the feasibility watchdog in
            // `crate::revised` (see CHANGES.md): which accuracy trigger
            // scheduled the refactorization, with the numbers behind it.
            if std::env::var_os("QAVA_LP_DEBUG_WATCHDOG").is_some() {
                eprintln!(
                    "ft shaky after update {}: d = {d:e} vs predicted {predicted:e} \
                     (tiny = {tiny}, drifted = {drifted})",
                    self.updates
                );
            }
        }
        if d == 0.0 {
            // An exactly singular spike would poison the very next solve
            // with non-finite values before the refactorization check
            // runs; any representable nonzero keeps the solves finite
            // until the shaky flag forces the rebuild.
            d = SHAKY_PIVOT * SHAKY_PIVOT;
        }

        // ---- 6. Install the spike as the new column of `rt`'s diagonal
        // (its above-diagonal part is the spike minus the pivot
        // component — the row elimination never touches the column), and
        // reset the spike workspace as it is read out. The L solve can
        // fill anywhere, so the whole workspace is scanned (O(m), minor
        // against the O(nnz) solves that produced it).
        let mut new_entries: Vec<(usize, f64)> = Vec::new();
        for c in 0..m {
            let v = self.spike[c];
            if v != 0.0 {
                self.spike[c] = 0.0;
                if c != rt {
                    self.row_nnz[c] += 1;
                    new_entries.push((c, v));
                }
            }
        }
        self.u_nnz += new_entries.len() + 1;
        self.u_cols[rt] = SparseCol::from_entries(new_entries);
        self.u_diag[rt] = d;

        // ---- 7. Reset the elimination workspace.
        for &(c, _) in &eta_entries {
            self.relim[c] = 0.0;
        }

        // ---- 8. Rotate the permutation: the pivot's row and column
        // cycle from position t to the end; everything in between shifts
        // up one. Row keys never change, so nothing else moves.
        self.order[t..].rotate_left(1);
        debug_assert_eq!(self.order[m - 1], rt);
        for p in t..m {
            self.pos_of[self.order[p]] = p;
        }

        // ---- 9. Record the spike-row eta (it sits between L and U in
        // every later solve), with its support bitmask so forward solves
        // can skip it when the solve vector has no mass on its rows.
        if !eta_entries.is_empty() {
            self.eta_nnz += eta_entries.len();
            let mut mask = vec![0u64; mask_words(m)];
            for &(c, _) in &eta_entries {
                mask_set(&mut mask, c);
            }
            self.etas.push(RowEta { row: rt, col: SparseCol::from_entries(eta_entries), mask });
        }
        self.updates += 1;
    }

    fn should_refactor(&self, _iteration: usize) -> bool {
        self.shaky
            || self.updates >= MAX_UPDATES
            || self.u_nnz + self.eta_nnz > FILL_FACTOR * self.base_nnz + self.m
    }

    /// Same contract as the eta engine: optimality claimed through
    /// incrementally updated factors must be re-derived from a fresh
    /// refactorization before it is reported (see
    /// `tests/drift_regression.rs` — the failure mode is shared by every
    /// incremental update scheme, not specific to the product form).
    fn trusts_incremental_optimal(&self) -> bool {
        false
    }

    fn stability(&self) -> UpdateStability {
        UpdateStability {
            accuracy_refactors: self.acc_refactors,
            // FT never interchanges; its growth is unmeasured (the
            // chased row is eliminated lazily, so no per-step peak is
            // available without extra work the hot loop shouldn't do).
            interchanges: 0,
            max_growth: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eta::LuBasis;
    use qava_linalg::Matrix;

    fn basis_csc(dense: Vec<Vec<f64>>) -> CscMatrix {
        CscMatrix::from_dense(&Matrix::from_rows(dense))
    }

    /// Reference B⁻¹ for a basis assembled the same way `refactor` does.
    fn dense_inverse(a: &CscMatrix, n: usize, basis: &[usize]) -> Matrix {
        let m = a.rows();
        let mut bm = Matrix::zeros(m, m);
        for (k, &j) in basis.iter().enumerate() {
            if j < n {
                let (idx, vals) = a.col(j);
                for (&r, &v) in idx.iter().zip(vals) {
                    bm[(r, k)] = v;
                }
            } else {
                bm[(j - n, k)] = 1.0;
            }
        }
        bm.inverse().expect("test basis nonsingular")
    }

    /// Every solve of `repr` must match the dense inverse of the basis.
    fn assert_matches_inverse(repr: &FtBasis, inv: &Matrix, tol: f64, ctx: &str) {
        let m = inv.rows();
        for t in 0..=m {
            let b: Vec<f64> = if t < m {
                (0..m).map(|i| if i == t { 1.0 } else { 0.0 }).collect()
            } else {
                (0..m).map(|i| (i as f64) * 0.7 - 1.3).collect()
            };
            let x = repr.ftran_dense(&b);
            let want = inv.mul_vec(&b);
            for (i, (&g, &w)) in x.iter().zip(&want).enumerate() {
                assert!((g - w).abs() < tol, "{ctx}: ftran[{i}] {g} vs {w}");
            }
            let y = repr.btran_dense(&b);
            let want_y = inv.mul_vec_transposed(&b);
            for (i, (&g, &w)) in y.iter().zip(&want_y).enumerate() {
                assert!((g - w).abs() < tol, "{ctx}: btran[{i}] {g} vs {w}");
            }
        }
    }

    /// Structural invariants of the row-keyed representation.
    fn check_invariants(repr: &FtBasis) {
        let m = repr.m;
        let mut seen = vec![false; m];
        for p in 0..m {
            let r = repr.order[p];
            assert!(!seen[r], "row key {r} appears twice in the order");
            seen[r] = true;
            assert_eq!(repr.pos_of[r], p, "pos_of out of sync at {r}");
            assert_eq!(repr.key_of_slot[repr.slot_of[r]], r, "slot maps out of sync");
        }
        let mut nnz = 0;
        for r in 0..m {
            nnz += repr.u_cols[r].nnz() + 1;
            for &rk in &repr.u_cols[r].idx {
                assert!(
                    repr.pos_of[rk] < repr.pos_of[r],
                    "triangularity violated: entry {rk} (pos {}) in column {r} (pos {})",
                    repr.pos_of[rk],
                    repr.pos_of[r]
                );
            }
        }
        assert_eq!(nnz, repr.u_nnz, "u_nnz bookkeeping drifted");
        let mut row_counts = vec![0usize; m];
        for r in 0..m {
            for &rk in &repr.u_cols[r].idx {
                row_counts[rk] += 1;
            }
        }
        assert_eq!(row_counts, repr.row_nnz, "row_nnz bookkeeping drifted");
        assert!(repr.spike.iter().all(|&v| v == 0.0), "spike workspace not reset");
        assert!(repr.relim.iter().all(|&v| v == 0.0), "relim workspace not reset");
    }

    #[test]
    fn identity_is_trivial() {
        let repr = FtBasis::identity(4);
        check_invariants(&repr);
        let x = repr.ftran_dense(&[1.0, -2.0, 3.0, 0.5]);
        assert_eq!(x, vec![1.0, -2.0, 3.0, 0.5]);
        assert_eq!(repr.btran_dense(&x), vec![1.0, -2.0, 3.0, 0.5]);
    }

    #[test]
    fn refactor_matches_dense_inverse() {
        let a = basis_csc(vec![
            vec![2.0, 0.0, 1.0, 1.0],
            vec![0.0, 3.0, 0.0, -1.0],
            vec![1.0, 1.0, 1.0, 0.0],
        ]);
        let basis = vec![0usize, 3, 2];
        let mut repr = FtBasis::identity(3);
        assert!(repr.refactor(&a, 4, &basis));
        check_invariants(&repr);
        let inv = dense_inverse(&a, 4, &basis);
        assert_matches_inverse(&repr, &inv, 1e-9, "refactor");
        for i in 0..3 {
            let row = repr.binv_row(i);
            for (j, got) in row.iter().enumerate() {
                assert!((got - inv[(i, j)]).abs() < 1e-9, "row {i} col {j}");
            }
        }
    }

    /// The FT update must track an explicit reinversion through a chain
    /// of exchanges — including re-pivoting a slot that was already
    /// replaced (second spike through the same diagonal) and pivoting at
    /// the last position (empty elimination window).
    #[test]
    fn ft_updates_track_explicit_reinversion() {
        let a = basis_csc(vec![
            vec![1.0, 2.0, 0.0, 1.0],
            vec![0.0, 1.0, 1.0, -1.0],
            vec![1.0, 0.0, 2.0, 0.5],
            vec![0.0, -1.0, 1.0, 2.0],
        ]);
        let n = 4;
        let m = 4;
        let mut repr = FtBasis::identity(m);
        let mut basis: Vec<usize> = (n..n + m).collect();
        // (column, slot) exchanges; column 3 later replaces slot 0 again.
        for &(col, slot) in &[(1usize, 0usize), (2, 2), (0, 1), (3, 0)] {
            let (idx, vals) = a.col(col);
            let u = repr.ftran_col(idx, vals);
            let support: Vec<usize> =
                (0..m).filter(|&i| u[i].abs() > qava_linalg::EPS).collect();
            assert!(u[slot].abs() > 1e-9, "test exchange must be pivotable");
            repr.update(slot, &u, &support, idx, vals);
            basis[slot] = col;
            check_invariants(&repr);
            let inv = dense_inverse(&a, n, &basis);
            assert_matches_inverse(&repr, &inv, 1e-8, &format!("after col {col} -> slot {slot}"));
        }
        assert_eq!(repr.updates, 4);
    }

    /// The binv_row fast path (Uᵀ sweep entered at slot `i`'s diagonal
    /// position) must agree with the generic dense btran once updates
    /// have rotated the factor ordering and stacked row etas.
    #[test]
    fn unit_btran_fast_path_matches_generic_after_updates() {
        let a = basis_csc(vec![
            vec![1.0, 2.0, 0.0, 1.0],
            vec![0.0, 1.0, 1.0, -1.0],
            vec![1.0, 0.0, 2.0, 0.5],
            vec![0.0, -1.0, 1.0, 2.0],
        ]);
        let m = 4;
        let mut repr = FtBasis::identity(m);
        for &(col, slot) in &[(1usize, 0usize), (2, 2), (0, 1)] {
            let (idx, vals) = a.col(col);
            let u = repr.ftran_col(idx, vals);
            let support: Vec<usize> =
                (0..m).filter(|&i| u[i].abs() > qava_linalg::EPS).collect();
            repr.update(slot, &u, &support, idx, vals);
        }
        assert!(repr.updates > 0 && !repr.etas.is_empty(), "fast path must see a rotated order");
        for i in 0..m {
            let fast = repr.binv_row(i);
            let mut e = vec![0.0; m];
            e[i] = 1.0;
            let generic = repr.btran_dense(&e);
            for (g, w) in fast.iter().zip(&generic) {
                assert!((g - w).abs() < 1e-12, "row {i}: {g} vs {w}");
            }
        }
    }

    /// Randomized stress: long random pivot chains on random sparse
    /// systems, each step checked against the dense inverse and the eta
    /// engine (both representations must describe the same basis).
    #[test]
    fn random_pivot_chains_match_dense_inverse_and_eta_engine() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0
        };
        for m in [3usize, 6, 11, 17] {
            let n = m + 5;
            // Random sparse system with solid column norms.
            let mut rows = vec![vec![0.0; n]; m];
            for (i, row) in rows.iter_mut().enumerate() {
                for (j, v) in row.iter_mut().enumerate() {
                    if j % m == i {
                        *v = 2.0 + next().abs();
                    } else if next() > 0.4 {
                        *v = next();
                    }
                }
            }
            let a = basis_csc(rows);
            let mut ft = FtBasis::identity(m);
            let mut eta = LuBasis::identity(m);
            let mut basis: Vec<usize> = (n..n + m).collect();
            let mut updates_done = 0;
            for step in 0..3 * m {
                let col = ((next().abs() * n as f64) as usize).min(n - 1);
                let (idx, vals) = a.col(col);
                if basis.contains(&col) || idx.is_empty() {
                    continue;
                }
                let u = ft.ftran_col(idx, vals);
                // Pivot on the largest healthy component.
                let Some((slot, _)) = u
                    .iter()
                    .enumerate()
                    .filter(|(i, v)| v.abs() > 0.1 && basis[*i] != col)
                    .max_by(|x, y| x.1.abs().total_cmp(&y.1.abs()))
                else {
                    continue;
                };
                let support: Vec<usize> =
                    (0..m).filter(|&i| u[i].abs() > qava_linalg::EPS).collect();
                ft.update(slot, &u, &support, idx, vals);
                let u_eta = eta.ftran_col(idx, vals);
                let support_eta: Vec<usize> =
                    (0..m).filter(|&i| u_eta[i].abs() > qava_linalg::EPS).collect();
                eta.update(slot, &u_eta, &support_eta, idx, vals);
                basis[slot] = col;
                updates_done += 1;
                check_invariants(&ft);
                let inv = dense_inverse(&a, n, &basis);
                assert_matches_inverse(&ft, &inv, 1e-7, &format!("m={m} step={step}"));
                // FT and eta engines describe the same basis: identical
                // dense solves.
                let b: Vec<f64> = (0..m).map(|i| (i as f64) * 0.3 - 0.7).collect();
                let xf = ft.ftran_dense(&b);
                let xe = eta.ftran_dense(&b);
                for (g, w) in xf.iter().zip(&xe) {
                    assert!((g - w).abs() < 1e-7, "ft vs eta diverged: {g} vs {w}");
                }
            }
            assert!(updates_done >= m, "m={m}: chain too short to be meaningful");
        }
    }

    #[test]
    fn refactor_triggers_fire() {
        // Column 1's bottom entry is tiny, so pivoting it into slot 1
        // dictates a tiny new diagonal.
        let a = basis_csc(vec![vec![1.0, 4.0], vec![0.0, 1e-9]]);
        let mut repr = FtBasis::identity(2);
        assert!(repr.refactor(&a, 2, &[0, 3]));
        assert!(!repr.should_refactor(0));
        let (idx, vals) = a.col(1);
        repr.update(1, &[4.0, 1e-9], &[0, 1], idx, vals);
        assert!(repr.shaky, "tiny spike pivot must flag shaky");
        assert!(repr.should_refactor(0));
        // Refactorization clears the flag (fresh pivoting order).
        assert!(repr.refactor(&a, 2, &[0, 1]));
        assert!(!repr.should_refactor(0));
        // Update-count backstop (self-replacements keep U the identity,
        // so neither the accuracy check nor the fill trigger interferes).
        let single = basis_csc(vec![vec![1.0]]);
        let mut repr = FtBasis::identity(1);
        assert!(repr.refactor(&single, 1, &[0]));
        for n in 0..MAX_UPDATES {
            assert!(!repr.should_refactor(0), "premature trigger after {n} updates");
            repr.update(0, &[1.0], &[0], &[0], &[1.0]);
        }
        assert!(repr.should_refactor(0));
        // A singular refactorization keeps the incremental state.
        let singular = basis_csc(vec![vec![0.0]]);
        assert!(!repr.refactor(&singular, 1, &[0]));
        assert!(repr.should_refactor(0), "state kept after failed refactor");
    }

    /// The fill-in trigger: dense spikes into a sparse (diagonal)
    /// factorization grow U until the threshold fires.
    #[test]
    fn fill_in_growth_triggers_refactorization() {
        let m = 12;
        // Diagonal basis columns 0..m plus m fully dense columns m..2m,
        // each diagonally dominant so every partially swapped basis
        // stays well-conditioned.
        let mut rows = vec![vec![0.0; 2 * m]; m];
        for (i, row) in rows.iter_mut().enumerate() {
            row[i] = 3.0;
            for j in 0..m {
                row[m + j] = if i == j { 4.0 } else { 1.0 / (1.0 + (i + 2 * j) as f64) };
            }
        }
        let a = basis_csc(rows);
        let mut repr = FtBasis::identity(m);
        assert!(repr.refactor(&a, 2 * m, &(0..m).collect::<Vec<_>>()));
        let mut fired = false;
        for slot in 0..m {
            let (idx, vals) = a.col(m + slot);
            let u = repr.ftran_col(idx, vals);
            assert!(u[slot].abs() > 0.1, "dominant diagonal keeps the exchange pivotable");
            let support: Vec<usize> = (0..m).filter(|&i| u[i].abs() > qava_linalg::EPS).collect();
            repr.update(slot, &u, &support, idx, vals);
            check_invariants(&repr);
            if repr.should_refactor(0) {
                fired = true;
                break;
            }
        }
        assert!(fired, "dense spikes never tripped the fill-in trigger");
    }
}
