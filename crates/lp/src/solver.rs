//! Runtime LP backend dispatch: the [`LpBackend`] trait and the
//! [`LpSolver`] session.
//!
//! Backend choice used to be a compile-time cargo feature and every
//! caller went through a bare free function, which made per-problem-class
//! dispatch, cross-solve warm starting and solver telemetry impossible.
//! This module promotes the choice to runtime:
//!
//! * [`LpBackend`] is the pluggable core-solver interface. A backend
//!   receives a **presolved, equilibrated** standard-form system
//!   `min cᵀx, A·x = b, x ≥ 0` (`b ≥ 0`) in CSC form plus an optional
//!   warm-start basis, and reports the solution, the final basis (when it
//!   supports warm starts) and the pivots it spent. [`SparseRevised`],
//!   [`DenseTableau`] and [`LuSimplex`] are the built-in implementations;
//!   external backends (interior point, …) implement the same trait and
//!   are attached with [`LpSolver::register_backend`].
//! * [`LpSolver`] is the per-synthesis **session**: it owns the shared
//!   pipeline (presolve → equilibration → warm-start lookup → backend →
//!   solution restore), the selection policy ([`BackendChoice`]), the
//!   bounded LRU warm-start basis cache, and cumulative [`LpStats`].
//!
//! One synthesis run threads a single session through every LP it
//! creates, so warm starts flow across the whole ε ternary search instead
//! of through ambient per-thread globals, and `qava --suite` can report
//! per-backend solve statistics.
//!
//! Sessions additionally support **dual-simplex reoptimization**
//! ([`LpSolver::reoptimize`] / [`LpSolver::set_reoptimize`]): when a
//! solve's reduced sparsity pattern has a cached final basis, the
//! revised-simplex backends refactorize it once and run dual pivots back
//! to primal feasibility instead of a cold two-phase solve — the
//! parametric-sweep fast path, with unchanged verdict certification and
//! an unconditional cold fallback on any doubt.

use crate::cache::{BasisCache, SharedBasisCache};
use crate::csc::CscMatrix;
use crate::faults::{self, FaultPlan, Site};
use crate::presolve::{self, StdRows};
use crate::{revised, simplex, LpBuilder, LpError, LpSolution};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Row/column cutovers below which [`BackendChoice::Auto`] prefers the
/// dense tableau: the sparse pipeline's fixed costs (pattern hashing,
/// basis refactorization) dominate on the µs-scale models that
/// polyhedron emptiness probes produce, where the dense tableau's
/// constant factor wins. Measured on the reduced (post-presolve) system.
const DENSE_CUTOVER_ROWS: usize = 16;
const DENSE_CUTOVER_COLS: usize = 96;

/// Cutovers above which [`BackendChoice::Auto`] routes to the LU-backed
/// simplex: the eta-file update is O(nnz) against the dense inverse's
/// O(m²) per pivot, but the LU solves only pay off once the basis is
/// both big enough and sparse enough that the factors stay compact.
/// Density is `nnz(A) / (m·n)` of the reduced system.
const LU_CUTOVER_ROWS: usize = 64;
const LU_MAX_DENSITY: f64 = 0.25;

/// Default capacity of the session's warm-start basis cache.
const DEFAULT_CACHE_CAPACITY: usize = 256;

/// What a backend returns for one core solve.
#[derive(Debug, Clone)]
pub struct CoreSolution {
    /// Optimal solution over the real columns of the core system.
    pub x: Vec<f64>,
    /// Final basis, if the backend can produce one for warm starting the
    /// next structurally identical solve; `None` for basis-free backends
    /// (the session then simply never caches).
    pub basis: Option<Vec<usize>>,
    /// Simplex pivots (or backend iterations) spent.
    pub pivots: usize,
    /// The supplied warm basis was accepted and drove the solve.
    pub warm_start_used: bool,
    /// Feasibility-watchdog refactor-backstop trips: the solve had to
    /// restart because a refactorization exposed a corrupted `x_B` (or
    /// itself failed on a singular basis where incremental state cannot
    /// be trusted). Always 0 for backends without incremental basis
    /// updates.
    pub watchdog_restarts: usize,
    /// The share of watchdog trips caused by a refactorization failing
    /// outright on a singular basis.
    pub watchdog_singular: usize,
    /// The share of watchdog trips caused by a refactorization exposing
    /// an infeasible (negative) `x_B`.
    pub watchdog_infeasible: usize,
    /// Cold re-solves forced into all-Bland mode (anti-cycling retries).
    pub bland_retries: usize,
    /// Accuracy-triggered refactorization flags: FT/BG updates whose
    /// determinant-identity cross-check disagreed with the eliminated
    /// diagonal. Always 0 for backends without that cross-check.
    pub accuracy_refactors: usize,
    /// Bartels–Golub row interchanges performed (`lu-bg` only).
    pub bg_interchanges: usize,
    /// Max spike-pivot growth factor observed across updates (`lu-bg`
    /// only; 0 when no update measured one).
    pub bg_max_growth: f64,
}

/// A pluggable LP core solver.
///
/// Implementations solve `min cᵀx, A·x = b, x ≥ 0` (with `b ≥ 0`) on a
/// system the session has already presolved and max-norm equilibrated.
/// They must be deterministic: the differential property tests run every
/// instance through all registered backends and require verdict and
/// objective agreement.
pub trait LpBackend {
    /// Short stable name, used for selection ([`LpSolver::select_backend`])
    /// and statistics ([`LpStats::backends`]).
    fn name(&self) -> &'static str;

    /// Whether this backend consumes warm-start bases. When `false` (the
    /// default) the session skips the pattern-hash and cache machinery
    /// entirely for solves routed here — the per-solve fixed cost matters
    /// on the µs-scale models the dense tableau exists for.
    fn supports_warm_start(&self) -> bool {
        false
    }

    /// Solves one equilibrated core system.
    ///
    /// `warm` is the final basis of a previous solve with the same
    /// sparsity pattern; backends without warm-start support ignore it.
    ///
    /// # Errors
    ///
    /// [`LpError::Infeasible`], [`LpError::Unbounded`], or
    /// [`LpError::PivotLimit`].
    fn solve_core(
        &self,
        costs: &[f64],
        a: &CscMatrix,
        b: &[f64],
        warm: Option<&[usize]>,
    ) -> Result<CoreSolution, LpError>;

    /// Whether this backend can reoptimize from a previous solve's final
    /// basis with the dual simplex (see [`LpSolver::reoptimize`]).
    fn supports_reoptimize(&self) -> bool {
        false
    }

    /// Attempts a dual-simplex reoptimization of one equilibrated core
    /// system from a previous solve's final `basis` — the parametric-sweep
    /// fast path: after an RHS perturbation the old optimal basis stays
    /// dual feasible, so a handful of dual pivots replace a cold
    /// two-phase solve. `None` declines or abandons the attempt (stale or
    /// singular basis, lost dual feasibility, numerical doubt) and the
    /// session falls back to [`solve_core`](Self::solve_core); a `Some`
    /// result went through exactly the same verdict certification as a
    /// cold solve.
    fn reoptimize_core(
        &self,
        _costs: &[f64],
        _a: &CscMatrix,
        _b: &[f64],
        _basis: &[usize],
    ) -> Option<CoreSolution> {
        None
    }
}

/// The sparse revised simplex backend (CSC pricing, `B⁻¹` updates,
/// warm-startable; see [`crate::revised`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct SparseRevised;

impl LpBackend for SparseRevised {
    fn name(&self) -> &'static str {
        "sparse"
    }

    fn supports_warm_start(&self) -> bool {
        true
    }

    fn solve_core(
        &self,
        costs: &[f64],
        a: &CscMatrix,
        b: &[f64],
        warm: Option<&[usize]>,
    ) -> Result<CoreSolution, LpError> {
        revised::solve_equilibrated(costs, a, b, warm).map(CoreSolution::from)
    }

    fn supports_reoptimize(&self) -> bool {
        true
    }

    fn reoptimize_core(
        &self,
        costs: &[f64],
        a: &CscMatrix,
        b: &[f64],
        basis: &[usize],
    ) -> Option<CoreSolution> {
        revised::dual_reoptimize(costs, a, b, basis).map(CoreSolution::from)
    }
}

/// The LU-backed revised simplex backend: the same pivoting loop as
/// [`SparseRevised`], but the basis lives as Markowitz-ordered sparse LU
/// factors ([`crate::lu`]) plus a product-form eta file ([`crate::eta`])
/// instead of an explicit `m × m` inverse — O(nnz) per pivot instead of
/// O(m²), with refactorization driven by eta-count/fill-in/accuracy
/// thresholds. The representation of choice for the large sparse
/// Handelman/Farkas LPs, and the conditioning fix for the degenerate
/// walk3d-style systems that trip the dense path's feasibility watchdog.
#[derive(Debug, Clone, Copy, Default)]
pub struct LuSimplex;

impl LpBackend for LuSimplex {
    fn name(&self) -> &'static str {
        "lu"
    }

    fn supports_warm_start(&self) -> bool {
        true
    }

    fn solve_core(
        &self,
        costs: &[f64],
        a: &CscMatrix,
        b: &[f64],
        warm: Option<&[usize]>,
    ) -> Result<CoreSolution, LpError> {
        revised::solve_equilibrated_lu(costs, a, b, warm).map(CoreSolution::from)
    }

    fn supports_reoptimize(&self) -> bool {
        true
    }

    fn reoptimize_core(
        &self,
        costs: &[f64],
        a: &CscMatrix,
        b: &[f64],
        basis: &[usize],
    ) -> Option<CoreSolution> {
        revised::dual_reoptimize_lu(costs, a, b, basis).map(CoreSolution::from)
    }
}

/// The LU + Forrest–Tomlin revised simplex backend: the same pivoting
/// loop and Markowitz-ordered factorization as [`LuSimplex`], but basis
/// exchanges are absorbed **into the U factor** as spike swaps
/// ([`crate::ft`]) instead of appended to a product-form eta file — so
/// ftran/btran stay O(nnz(L) + nnz(U)) between refactorizations with no
/// eta stack to traverse, and refactorization is driven by U fill-in
/// growth and spike-pivot magnitude. The engine of choice for the
/// longest pivot runs (the large degenerate Handelman/εmax systems);
/// the eta-file `lu` backend remains available so the update schemes
/// can be differentially raced.
#[derive(Debug, Clone, Copy, Default)]
pub struct LuFtSimplex;

impl LpBackend for LuFtSimplex {
    fn name(&self) -> &'static str {
        "lu-ft"
    }

    fn supports_warm_start(&self) -> bool {
        true
    }

    fn solve_core(
        &self,
        costs: &[f64],
        a: &CscMatrix,
        b: &[f64],
        warm: Option<&[usize]>,
    ) -> Result<CoreSolution, LpError> {
        revised::solve_equilibrated_lu_ft(costs, a, b, warm).map(CoreSolution::from)
    }

    fn supports_reoptimize(&self) -> bool {
        true
    }

    fn reoptimize_core(
        &self,
        costs: &[f64],
        a: &CscMatrix,
        b: &[f64],
        basis: &[usize],
    ) -> Option<CoreSolution> {
        revised::dual_reoptimize_lu_ft(costs, a, b, basis).map(CoreSolution::from)
    }
}

/// The LU revised simplex with **Bartels–Golub** basis updates: basis
/// exchanges are absorbed into U like [`LuFtSimplex`], but the spike is
/// eliminated with row interchanges ([`crate::bg`]) — at each
/// elimination step the larger of the diagonal and the spike-row entry
/// pivots, so every multiplier is bounded by 1 and a tiny spike pivot
/// swaps out of the way instead of amplifying rounding error. The price
/// is extra row-eta fill (eager elimination instead of FT's single lazy
/// row eta), which the shared fill-growth refactorization trigger
/// bounds. Stability accounting (interchange count, max spike-pivot
/// growth, accuracy-triggered refactorizations) is threaded into
/// [`LpStats`] so the scheme can be compared against `lu-ft` in the
/// suite footer.
#[derive(Debug, Clone, Copy, Default)]
pub struct LuBgSimplex;

impl LpBackend for LuBgSimplex {
    fn name(&self) -> &'static str {
        "lu-bg"
    }

    fn supports_warm_start(&self) -> bool {
        true
    }

    fn solve_core(
        &self,
        costs: &[f64],
        a: &CscMatrix,
        b: &[f64],
        warm: Option<&[usize]>,
    ) -> Result<CoreSolution, LpError> {
        revised::solve_equilibrated_lu_bg(costs, a, b, warm).map(CoreSolution::from)
    }

    fn supports_reoptimize(&self) -> bool {
        true
    }

    fn reoptimize_core(
        &self,
        costs: &[f64],
        a: &CscMatrix,
        b: &[f64],
        basis: &[usize],
    ) -> Option<CoreSolution> {
        revised::dual_reoptimize_lu_bg(costs, a, b, basis).map(CoreSolution::from)
    }
}

impl From<revised::CoreOutcome> for CoreSolution {
    /// The one field mapping from the shared revised-simplex core to the
    /// backend interface, used by both warm-capable backends.
    fn from(out: revised::CoreOutcome) -> Self {
        CoreSolution {
            x: out.x,
            basis: Some(out.basis),
            pivots: out.pivots,
            warm_start_used: out.warm_start_used,
            watchdog_restarts: out.watchdog_restarts,
            watchdog_singular: out.watchdog_singular,
            watchdog_infeasible: out.watchdog_infeasible,
            bland_retries: out.bland_retries,
            accuracy_refactors: out.accuracy_refactors,
            bg_interchanges: out.bg_interchanges,
            bg_max_growth: out.bg_max_growth,
        }
    }
}

/// The dense two-phase tableau backend (see [`crate::simplex`]). No
/// warm-start support; kept both as the small-model fast path of
/// [`BackendChoice::Auto`] and as the differential-testing oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct DenseTableau;

impl LpBackend for DenseTableau {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn solve_core(
        &self,
        costs: &[f64],
        a: &CscMatrix,
        b: &[f64],
        _warm: Option<&[usize]>,
    ) -> Result<CoreSolution, LpError> {
        let dense = a.to_dense();
        let mut pivots = 0usize;
        let x = simplex::solve_standard_unscaled(costs, &dense, b, &mut pivots)?;
        Ok(CoreSolution {
            x,
            basis: None,
            pivots,
            warm_start_used: false,
            watchdog_restarts: 0,
            watchdog_singular: 0,
            watchdog_infeasible: 0,
            bland_retries: 0,
            accuracy_refactors: 0,
            bg_interchanges: 0,
            bg_max_growth: 0.0,
        })
    }
}

/// Backend selection policy of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// Hybrid dispatch by size **and** density of the reduced system:
    /// tiny models (≤ 16 rows, ≤ 96 columns) take the dense tableau,
    /// large sparse ones (≥ 64 rows at ≤ 25% density) the
    /// Forrest–Tomlin LU simplex (the classes with the longest pivot
    /// runs, where the eta-free solves pay off most), everything in
    /// between the dense-inverse sparse revised simplex. This is the
    /// default unless the crate is built with the `dense-simplex`
    /// feature, which flips the default to [`BackendChoice::Dense`].
    #[cfg_attr(not(feature = "dense-simplex"), default)]
    Auto,
    /// Always the sparse revised simplex (dense-inverse basis engine).
    Sparse,
    /// Always the dense tableau.
    #[cfg_attr(feature = "dense-simplex", default)]
    Dense,
    /// Always the LU + eta-file revised simplex.
    Lu,
    /// Always the LU + Forrest–Tomlin revised simplex.
    LuFt,
    /// Always the LU + Bartels–Golub revised simplex.
    LuBg,
}

impl std::str::FromStr for BackendChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(BackendChoice::Auto),
            "sparse" => Ok(BackendChoice::Sparse),
            "dense" => Ok(BackendChoice::Dense),
            "lu" => Ok(BackendChoice::Lu),
            "lu-ft" => Ok(BackendChoice::LuFt),
            "lu-bg" => Ok(BackendChoice::LuBg),
            other => Err(format!(
                "unknown LP backend `{other}` (expected auto, sparse, dense, lu, lu-ft, or lu-bg)"
            )),
        }
    }
}

impl BackendChoice {
    /// Scans raw CLI arguments for `--lp-backend <value>` (last
    /// occurrence wins) — the one shared implementation of the flag for
    /// every binary that exposes it. Returns `Ok(None)` when absent.
    ///
    /// # Errors
    ///
    /// A human-readable message when the flag has no value or an unknown
    /// one.
    pub fn from_args(args: &[String]) -> Result<Option<BackendChoice>, String> {
        let mut found = None;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if a == "--lp-backend" {
                let v = it.next().ok_or_else(|| {
                    "--lp-backend needs auto, sparse, dense, lu, lu-ft, or lu-bg".to_string()
                })?;
                found = Some(v.parse()?);
            }
        }
        Ok(found)
    }
}

impl std::fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BackendChoice::Auto => "auto",
            BackendChoice::Sparse => "sparse",
            BackendChoice::Dense => "dense",
            BackendChoice::Lu => "lu",
            BackendChoice::LuFt => "lu-ft",
            BackendChoice::LuBg => "lu-bg",
        };
        write!(f, "{s}")
    }
}

/// Per-backend share of a session's statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendTally {
    /// Backend name ([`LpBackend::name`]).
    pub name: &'static str,
    /// Core solves routed to this backend.
    pub solves: usize,
    /// Pivots spent by this backend.
    pub pivots: usize,
    /// Wall time inside the backend, seconds.
    pub wall_seconds: f64,
}

/// Cumulative statistics of an [`LpSolver`] session. Mergeable across
/// sessions ([`LpStats::merge`]) so the parallel suite driver can report
/// fleet-wide totals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LpStats {
    /// Standard-form solves requested (including presolve-only ones).
    pub solves: usize,
    /// Total simplex pivots across all backends.
    pub pivots: usize,
    /// Constraint rows removed by presolve.
    pub presolve_rows_removed: usize,
    /// Columns removed by presolve (fixed or empty).
    pub presolve_cols_removed: usize,
    /// Cached warm-start bases that were accepted and drove a solve.
    pub warm_start_hits: usize,
    /// Core solves on warm-capable backends that ran cold (no cached
    /// basis, or it was rejected). Backends without warm-start support
    /// are not counted here.
    pub warm_start_misses: usize,
    /// Warm-start cache entries evicted by the LRU capacity bound.
    pub cache_evictions: usize,
    /// Warm-start hits served from an attached **process-wide**
    /// [`SharedBasisCache`] rather than this session's own cache — the
    /// cross-request (and, when the store was loaded from disk,
    /// cross-process) warmth a resident daemon exists to provide. Always
    /// a subset of `warm_start_hits`.
    pub persistent_warm_hits: usize,
    /// Feasibility-watchdog refactor-backstop trips across all solves: a
    /// refactorization exposed a corrupted `x_B` (or failed outright on
    /// a singular basis where incremental state cannot be trusted) and
    /// the core solve restarted from scratch. Persistent nonzero counts
    /// on a workload mean the selected basis representation is
    /// numerically outmatched (route it to the `lu` backend).
    pub watchdog_restarts: usize,
    /// Watchdog trips whose cause was a refactorization failing outright
    /// on a singular basis (the `watchdog_restarts` cause split;
    /// formerly only visible as `QAVA_LP_DEBUG_WATCHDOG` prints).
    pub watchdog_singular: usize,
    /// Watchdog trips whose cause was a refactorization exposing an
    /// infeasible (negative) `x_B`.
    pub watchdog_infeasible: usize,
    /// Cold re-solves forced into all-Bland mode (Dantzig-cycle and
    /// watchdog retries).
    pub bland_retries: usize,
    /// Failover-ladder rungs attempted after a backend exhausted its
    /// in-backend recovery and still returned
    /// [`LpError::PivotLimit`] — each rung re-runs the full pipeline on
    /// the next backend down (`lu-ft → lu-bg → lu → sparse → dense`).
    pub failovers: usize,
    /// Failover rungs that rescued the solve: the stepped-down backend
    /// produced the certified verdict.
    pub failover_recoveries: usize,
    /// Dual-simplex reoptimization attempts: solves in
    /// [reoptimize mode](LpSolver::set_reoptimize) that found a cached
    /// basis on a reoptimization-capable backend and tried dual pivots
    /// before the primal path.
    pub reopt_attempts: usize,
    /// Reoptimization attempts that produced the certified optimum;
    /// `reopt_attempts − reopt_successes` solves fell back to a cold
    /// primal solve.
    pub reopt_successes: usize,
    /// Accuracy-triggered refactorizations: FT/BG updates whose
    /// determinant-identity cross-check drifted, forcing an early
    /// refactorization. The head-to-head stability metric between the
    /// `lu-ft` and `lu-bg` update schemes.
    pub accuracy_refactors: usize,
    /// Bartels–Golub row interchanges performed (`lu-bg` solves only).
    pub bg_interchanges: usize,
    /// Max spike-pivot growth factor observed across all `lu-bg`
    /// updates (0 when none measured one).
    pub bg_max_growth: f64,
    /// Total wall time in the solve pipeline, seconds.
    pub wall_seconds: f64,
    /// Per-backend breakdown, in first-use order.
    pub backends: Vec<BackendTally>,
}

impl LpStats {
    /// Folds another session's counters into this one (suite aggregation).
    ///
    /// Destructures `other` exhaustively so adding an [`LpStats`] field
    /// without deciding how it merges is a compile error, not a silently
    /// dropped counter.
    pub fn merge(&mut self, other: &LpStats) {
        let LpStats {
            solves,
            pivots,
            presolve_rows_removed,
            presolve_cols_removed,
            warm_start_hits,
            warm_start_misses,
            cache_evictions,
            persistent_warm_hits,
            watchdog_restarts,
            watchdog_singular,
            watchdog_infeasible,
            bland_retries,
            failovers,
            failover_recoveries,
            reopt_attempts,
            reopt_successes,
            accuracy_refactors,
            bg_interchanges,
            bg_max_growth,
            wall_seconds,
            backends,
        } = other;
        self.solves += solves;
        self.pivots += pivots;
        self.presolve_rows_removed += presolve_rows_removed;
        self.presolve_cols_removed += presolve_cols_removed;
        self.warm_start_hits += warm_start_hits;
        self.warm_start_misses += warm_start_misses;
        self.cache_evictions += cache_evictions;
        self.persistent_warm_hits += persistent_warm_hits;
        self.watchdog_restarts += watchdog_restarts;
        self.watchdog_singular += watchdog_singular;
        self.watchdog_infeasible += watchdog_infeasible;
        self.bland_retries += bland_retries;
        self.failovers += failovers;
        self.failover_recoveries += failover_recoveries;
        self.reopt_attempts += reopt_attempts;
        self.reopt_successes += reopt_successes;
        self.accuracy_refactors += accuracy_refactors;
        self.bg_interchanges += bg_interchanges;
        self.bg_max_growth = self.bg_max_growth.max(*bg_max_growth);
        self.wall_seconds += wall_seconds;
        for t in backends {
            self.tally_mut(t.name).fold(t);
        }
    }

    fn tally_mut(&mut self, name: &'static str) -> &mut BackendTally {
        if let Some(pos) = self.backends.iter().position(|t| t.name == name) {
            return &mut self.backends[pos];
        }
        self.backends.push(BackendTally { name, solves: 0, pivots: 0, wall_seconds: 0.0 });
        self.backends.last_mut().expect("just pushed")
    }
}

impl std::fmt::Display for LpStats {
    /// Human-readable multi-line summary (the `qava --suite` footer).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "lp: {} solves, {} pivots, {:.3}s; presolve removed {} rows / {} cols; \
             warm start {} hits / {} misses, {} evictions, {} persistent; \
             {} watchdog restarts ({} singular / {} infeasible), {} bland retries; \
             {} failovers / {} rescues; {} dual reopts ({} fell back cold); \
             {} accuracy refactors, {} bg interchanges (growth {:.2}); \
             vec kernel {kernel}",
            self.solves,
            self.pivots,
            self.wall_seconds,
            self.presolve_rows_removed,
            self.presolve_cols_removed,
            self.warm_start_hits,
            self.warm_start_misses,
            self.cache_evictions,
            self.persistent_warm_hits,
            self.watchdog_restarts,
            self.watchdog_singular,
            self.watchdog_infeasible,
            self.bland_retries,
            self.failovers,
            self.failover_recoveries,
            self.reopt_attempts,
            self.reopt_attempts - self.reopt_successes,
            self.accuracy_refactors,
            self.bg_interchanges,
            self.bg_max_growth,
            // The process-wide SIMD kernel behind every vecops call: logs
            // and bench artifacts must say which backend produced them —
            // including when the requested kernel silently degraded.
            kernel = qava_linalg::kernel::provenance(),
        )?;
        for t in &self.backends {
            writeln!(
                f,
                "lp[{}]: {} solves, {} pivots, {:.3}s",
                t.name, t.solves, t.pivots, t.wall_seconds
            )?;
        }
        Ok(())
    }
}

/// An LP solver **session**: backend registry and selection policy, the
/// warm-start basis cache, and cumulative statistics.
///
/// Synthesis code creates one session per run and threads it through
/// every LP (`solver.solve(&builder)`), so structurally identical LPs
/// warm-start each other within the run without any ambient state. See
/// the crate docs for a registration/selection example.
pub struct LpSolver {
    backends: Vec<Box<dyn LpBackend>>,
    /// `Auto` applies the size/density cutovers between
    /// `sparse_idx`/`dense_idx`/`lu_idx`; `Fixed` pins one registered
    /// backend.
    selection: Selection,
    sparse_idx: usize,
    dense_idx: usize,
    lu_idx: usize,
    lu_ft_idx: usize,
    lu_bg_idx: usize,
    cache: BasisCache,
    /// Optional process-wide warm-start store consulted read-through on
    /// session-cache misses and written write-through on every cache
    /// update; see [`set_shared_cache`](Self::set_shared_cache).
    shared: Option<Arc<SharedBasisCache>>,
    stats: LpStats,
    /// Shared cooperative-cancellation flag, polled once at every solve
    /// boundary; see [`set_cancel_flag`](Self::set_cancel_flag).
    cancel: Option<Arc<AtomicBool>>,
    /// Per-request deadline, enforced at the same solve boundaries as
    /// the cancel flag; see [`set_deadline`](Self::set_deadline).
    deadline: Option<Instant>,
    /// The session's installed fault-injection plan (testing only); see
    /// [`install_fault_plan`](Self::install_fault_plan).
    faults: Option<FaultPlan>,
    /// Whether the graceful-degradation failover ladder is enabled.
    failover: bool,
    /// Whether solves try dual-simplex reoptimization from the cached
    /// basis before the primal path; see
    /// [`set_reoptimize`](Self::set_reoptimize).
    reopt: bool,
}

#[derive(Debug, Clone, Copy)]
enum Selection {
    Auto,
    Fixed(usize),
}

impl Default for LpSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LpSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LpSolver")
            .field("backends", &self.backend_names())
            .field("selection", &self.selection)
            .field("stats", &self.stats)
            .finish()
    }
}

impl LpSolver {
    /// Creates a session with the built-in backends and the default
    /// policy: [`BackendChoice::Auto`], or [`BackendChoice::Dense`] when
    /// the crate is built with the `dense-simplex` feature.
    pub fn new() -> Self {
        Self::with_choice(BackendChoice::default())
    }

    /// Creates a session with an explicit built-in selection policy.
    pub fn with_choice(choice: BackendChoice) -> Self {
        let mut s = LpSolver {
            backends: vec![
                Box::new(SparseRevised),
                Box::new(DenseTableau),
                Box::new(LuSimplex),
                Box::new(LuFtSimplex),
                Box::new(LuBgSimplex),
            ],
            selection: Selection::Auto,
            sparse_idx: 0,
            dense_idx: 1,
            lu_idx: 2,
            lu_ft_idx: 3,
            lu_bg_idx: 4,
            cache: BasisCache::new(DEFAULT_CACHE_CAPACITY),
            shared: None,
            stats: LpStats::default(),
            cancel: None,
            deadline: None,
            faults: faults::from_env(),
            failover: true,
            reopt: false,
        };
        s.set_choice(choice);
        s
    }

    /// Switches between the built-in policies at runtime.
    pub fn set_choice(&mut self, choice: BackendChoice) {
        self.selection = match choice {
            BackendChoice::Auto => Selection::Auto,
            BackendChoice::Sparse => Selection::Fixed(self.sparse_idx),
            BackendChoice::Dense => Selection::Fixed(self.dense_idx),
            BackendChoice::Lu => Selection::Fixed(self.lu_idx),
            BackendChoice::LuFt => Selection::Fixed(self.lu_ft_idx),
            BackendChoice::LuBg => Selection::Fixed(self.lu_bg_idx),
        };
    }

    /// Registers an additional backend and selects it. The backend stays
    /// registered (and re-selectable by name) if the policy is changed
    /// later.
    pub fn register_backend(&mut self, backend: Box<dyn LpBackend>) {
        self.backends.push(backend);
        self.selection = Selection::Fixed(self.backends.len() - 1);
    }

    /// Pins the backend with the given [`name`](LpBackend::name); returns
    /// `false` (leaving the selection unchanged) when no such backend is
    /// registered.
    pub fn select_backend(&mut self, name: &str) -> bool {
        match self.backends.iter().position(|b| b.name() == name) {
            Some(idx) => {
                self.selection = Selection::Fixed(idx);
                true
            }
            None => false,
        }
    }

    /// Names of all registered backends, in registration order.
    pub fn backend_names(&self) -> Vec<&'static str> {
        self.backends.iter().map(|b| b.name()).collect()
    }

    /// Cumulative statistics since creation (or the last
    /// [`reset_stats`](Self::reset_stats)).
    pub fn stats(&self) -> &LpStats {
        &self.stats
    }

    /// Returns the accumulated statistics, leaving zeroed counters behind.
    pub fn take_stats(&mut self) -> LpStats {
        std::mem::take(&mut self.stats)
    }

    /// Zeroes the statistics.
    pub fn reset_stats(&mut self) {
        self.stats = LpStats::default();
    }

    /// Folds an externally captured [`LpStats`] into this session's
    /// totals. Together with [`take_stats`](Self::take_stats) this lets a
    /// caller carve a session's statistics into per-phase slices without
    /// losing the session-wide running total (the bound-engine adapters
    /// in `qava-core` do exactly that).
    pub fn merge_stats(&mut self, other: &LpStats) {
        self.stats.merge(other);
    }

    /// Attaches a shared cooperative-cancellation flag. The session polls
    /// it once at the start of every solve; once the flag is `true`,
    /// every subsequent solve returns [`LpError::Cancelled`] immediately
    /// without doing any work. Raising the flag never corrupts a solve
    /// already in flight — cancellation happens only at solve
    /// boundaries, so whatever result the current solve produces is
    /// still exact. The candidate racer gives every racing engine's
    /// session the same flag; the winner raises it.
    pub fn set_cancel_flag(&mut self, flag: Arc<AtomicBool>) {
        self.cancel = Some(flag);
    }

    /// Detaches the cancellation flag; solves run to completion again.
    pub fn clear_cancel_flag(&mut self) {
        self.cancel = None;
    }

    /// Whether the attached cancellation flag (if any) has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// Sets an absolute per-request deadline, enforced at the same solve
    /// boundaries as the cancel flag: once it passes, every subsequent
    /// solve returns [`LpError::Cancelled`] without work. A solve in
    /// flight is never interrupted — deadline expiry, like
    /// cancellation, only ever suppresses *future* solves, so whatever
    /// the current solve returns is still exact.
    pub fn set_deadline(&mut self, deadline: Instant) {
        self.deadline = Some(deadline);
    }

    /// Sets the deadline `budget` from now
    /// ([`set_deadline`](Self::set_deadline) with `Instant::now() + budget`).
    pub fn set_deadline_in(&mut self, budget: Duration) {
        self.deadline = Some(Instant::now() + budget);
    }

    /// Removes the deadline; solves run to completion again.
    pub fn clear_deadline(&mut self) {
        self.deadline = None;
    }

    /// Whether the deadline (if any) has passed.
    pub fn deadline_expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Installs a fault-injection plan for this session (replacing any
    /// previous one, including one read from `QAVA_LP_FAULTS` at
    /// construction). See [`crate::faults`] for the fault catalogue and
    /// firing semantics.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Removes the installed fault plan, returning it (so tests can
    /// inspect [`FaultPlan::fired`]).
    pub fn clear_fault_plan(&mut self) -> Option<FaultPlan> {
        self.faults.take()
    }

    /// Whether the installed fault plan (if any) has fired.
    pub fn fault_fired(&self) -> bool {
        self.faults.as_ref().is_some_and(|p| p.fired())
    }

    /// Enables or disables the graceful-degradation failover ladder
    /// (enabled by default). With the ladder off, a backend's
    /// [`LpError::PivotLimit`] surfaces directly — the raw-backend
    /// behavior the differential tests rely on.
    pub fn set_failover(&mut self, enabled: bool) {
        self.failover = enabled;
    }

    /// Enables or disables dual-simplex reoptimization mode (disabled by
    /// default). In this mode every solve whose (presolved, equilibrated)
    /// sparsity pattern has a cached final basis first refactorizes that
    /// basis and — when it still prices out dual-feasible, which an
    /// RHS-only perturbation guarantees — runs dual pivots back to primal
    /// feasibility instead of a cold two-phase solve. Verdict rules are
    /// unchanged (reoptimized optima go through the same
    /// fresh-refactorization certification), and any doubt falls back to
    /// the ordinary primal path, so the mode can only change solve
    /// *cost*, never a result. The parametric sweep driver
    /// (`qava --sweep`) runs its per-family sessions in this mode.
    pub fn set_reoptimize(&mut self, enabled: bool) {
        self.reopt = enabled;
    }

    /// Whether dual-simplex reoptimization mode is enabled.
    pub fn reoptimize_enabled(&self) -> bool {
        self.reopt
    }

    /// Solves a built model with dual-simplex reoptimization enabled for
    /// just this call — [`solve`](Self::solve) of a perturbed neighbor of
    /// the previous model, at (ideally) a handful of dual pivots instead
    /// of a cold solve. Equivalent to wrapping one `solve` in
    /// [`set_reoptimize`](Self::set_reoptimize).
    ///
    /// # Errors
    ///
    /// Exactly those of [`solve`](Self::solve).
    pub fn reoptimize(&mut self, lp: &LpBuilder) -> Result<LpSolution, LpError> {
        let prev = self.reopt;
        self.reopt = true;
        let out = lp.solve_in(self);
        self.reopt = prev;
        out
    }

    /// Probes the session fault plan at an injection site.
    fn fault_trip(&mut self, site: Site) -> bool {
        self.faults.as_mut().is_some_and(|p| p.arm(site))
    }

    /// Re-bounds the warm-start cache, evicting least-recently-used
    /// entries down to the new capacity immediately. Capacity 0 disables
    /// caching.
    pub fn set_cache_capacity(&mut self, capacity: usize) {
        self.cache.capacity = capacity;
        while self.cache.map.len() > capacity && self.cache.evict_lru() {
            self.stats.cache_evictions += 1;
        }
    }

    /// Drops every cached warm-start basis (benchmarks use this to
    /// measure the cold path deterministically).
    pub fn clear_warm_start_cache(&mut self) {
        self.cache.clear();
    }

    /// Attaches a process-wide [`SharedBasisCache`]. The session then
    /// consults it **read-through** — its own cache first, the shared
    /// store on a miss — and writes every reusable final basis
    /// **write-through** to both, so concurrent sessions (one per daemon
    /// request) seed each other without sharing any other state. Hits
    /// served from the shared store are counted in
    /// [`LpStats::persistent_warm_hits`].
    ///
    /// A shared basis is advisory exactly like a session-cached one:
    /// shape-validated before use, re-validated by the backend's
    /// refactorization, and invalidated in *both* stores when it sends a
    /// solve down the failover ladder — so a stale or even corrupted
    /// entry can cost a cold solve, never an answer.
    pub fn set_shared_cache(&mut self, shared: Arc<SharedBasisCache>) {
        self.shared = Some(shared);
    }

    /// Detaches the shared store; the session is back to private warmth.
    pub fn clear_shared_cache(&mut self) {
        self.shared = None;
    }

    /// Failover invalidation, reaching both stores: a basis that sent a
    /// solve down the ladder must not seed the next solve of the same
    /// pattern in *any* session.
    fn invalidate_warm(&mut self, key: u64) {
        self.cache.remove(key);
        if let Some(shared) = &self.shared {
            shared.remove(key);
        }
    }

    /// Solves a built model; the session-threaded equivalent of
    /// [`LpBuilder::solve`].
    ///
    /// # Errors
    ///
    /// [`LpError::Infeasible`], [`LpError::Unbounded`], or
    /// [`LpError::PivotLimit`].
    pub fn solve(&mut self, lp: &LpBuilder) -> Result<LpSolution, LpError> {
        lp.solve_in(self)
    }

    /// Solves `min cᵀx, A·x = b, x ≥ 0` (with `b ≥ 0`) and returns the
    /// optimal `x`; the session-threaded equivalent of
    /// [`crate::solve_standard`].
    ///
    /// # Errors
    ///
    /// [`LpError::Infeasible`], [`LpError::Unbounded`], or
    /// [`LpError::PivotLimit`].
    pub fn solve_standard(
        &mut self,
        costs: &[f64],
        a: &qava_linalg::Matrix,
        b: &[f64],
    ) -> Result<Vec<f64>, LpError> {
        let rows: Vec<Vec<(usize, f64)>> = (0..a.rows())
            .map(|i| {
                a.row(i)
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0.0)
                    .map(|(j, &v)| (j, v))
                    .collect()
            })
            .collect();
        self.solve_std_rows(StdRows {
            costs: costs.to_vec(),
            rows,
            b: b.to_vec(),
            ncols: a.cols(),
        })
    }

    /// Solves `min cᵀx, A·x = b, x ≥ 0` (with `b ≥ 0`) given sparse
    /// constraint rows (`(column, coefficient)` pairs), without
    /// materializing a dense matrix — the sparse-form sibling of
    /// [`solve_standard`](Self::solve_standard).
    ///
    /// # Errors
    ///
    /// [`LpError::Infeasible`], [`LpError::Unbounded`],
    /// [`LpError::PivotLimit`], or [`LpError::Cancelled`].
    pub fn solve_standard_sparse(
        &mut self,
        costs: &[f64],
        rows: &[Vec<(usize, f64)>],
        b: &[f64],
        ncols: usize,
    ) -> Result<Vec<f64>, LpError> {
        self.solve_std_rows(StdRows {
            costs: costs.to_vec(),
            rows: rows.to_vec(),
            b: b.to_vec(),
            ncols,
        })
    }

    /// The shared solve pipeline: presolve → equilibration → warm-start
    /// lookup → selected backend → cache update → solution restore,
    /// wrapped in the failover ladder.
    pub(crate) fn solve_std_rows(&mut self, lp: StdRows) -> Result<Vec<f64>, LpError> {
        // Cancellation, deadline expiry, and the injected flavor of the
        // latter share one boundary and one error: the solve performs no
        // work and is not counted.
        if self.is_cancelled()
            || self.deadline_expired()
            || self.fault_trip(Site::SolveBoundary)
        {
            return Err(LpError::Cancelled);
        }
        let started = Instant::now();
        self.stats.solves += 1;
        let out = self.pipeline(lp);
        self.stats.wall_seconds += started.elapsed().as_secs_f64();
        out
    }

    /// Runs [`attempt`](Self::attempt) on the selected backend, then —
    /// when it exhausts in-backend recovery and still reports
    /// [`LpError::PivotLimit`] — steps down the failover ladder
    /// `lu-ft → lu-bg → lu → sparse → dense` (wrapping past the bottom so every
    /// other rung is tried exactly once), re-running the full pipeline
    /// per rung. `Infeasible`/`Unbounded`/`Cancelled` are verdicts, not
    /// faults: they return immediately from whichever rung produced
    /// them.
    fn pipeline(&mut self, lp: StdRows) -> Result<Vec<f64>, LpError> {
        let first = self.attempt(&lp, None);
        let failover_from = match &first.result {
            Err(LpError::PivotLimit) if self.failover => first.backend_idx,
            _ => None,
        };
        let Some(failed_idx) = failover_from else {
            return first.result;
        };
        // The basis that seeded the failed run must not seed the next
        // solve of this pattern (nor the rungs below, which share the
        // cache key).
        if let Some(key) = first.warm_key {
            self.invalidate_warm(key);
        }
        let ladder =
            [self.lu_ft_idx, self.lu_bg_idx, self.lu_idx, self.sparse_idx, self.dense_idx];
        // External backends (not on the ladder) fail over to the top
        // rung; built-ins resume below their own position. The walk
        // wraps: when the *bottom* rung is the one that failed (a
        // transient fault on the dense oracle), the rungs above it are
        // still untried solvers and each gets one shot before the
        // session gives up.
        let start = ladder.iter().position(|&i| i == failed_idx).map_or(0, |p| p + 1);
        let rungs =
            (start..start + ladder.len()).map(|k| ladder[k % ladder.len()]).filter(|&i| {
                i != failed_idx
            });
        for idx in rungs {
            self.stats.failovers += 1;
            let retry = self.attempt(&lp, Some(idx));
            match retry.result {
                Err(LpError::PivotLimit) => {
                    if let Some(key) = retry.warm_key {
                        self.invalidate_warm(key);
                    }
                }
                Ok(x) => {
                    self.stats.failover_recoveries += 1;
                    return Ok(x);
                }
                err => return err,
            }
        }
        Err(LpError::PivotLimit)
    }

    /// One full pipeline pass on one backend: presolve → equilibration →
    /// warm-start lookup → backend call → cache update → restore.
    /// `force` pins the backend (a failover rung); `None` applies the
    /// session's selection policy.
    fn attempt(&mut self, lp: &StdRows, force: Option<usize>) -> Attempt {
        let orig_rows = lp.rows.len();
        let orig_cols = lp.ncols;
        let (reduced, restore) = match presolve::reduce(lp.clone()) {
            Ok(pair) => pair,
            Err(e) => return Attempt::verdict(Err(e)),
        };
        self.stats.presolve_rows_removed += orig_rows - reduced.rows.len();
        self.stats.presolve_cols_removed += orig_cols - reduced.ncols;
        if reduced.rows.is_empty() {
            // Fully presolved: the (empty) system is trivially feasible.
            return Attempt::verdict(if restore.unbounded_if_feasible {
                Err(LpError::Unbounded)
            } else {
                Ok(restore.expand(&vec![0.0; reduced.ncols]))
            });
        }

        let a = CscMatrix::from_sparse_rows(reduced.rows.len(), reduced.ncols, &reduced.rows);
        let m = a.rows();
        let n = a.cols();

        // ---- Equilibration: rows then columns to unit max-norm, with the
        // [0.25, 4] dead-band shared by every backend. ----
        let mut row_max = vec![0.0f64; m];
        a.for_each(|r, _, v| row_max[r] = row_max[r].max(v.abs()));
        let row_scale: Vec<f64> = row_max
            .iter()
            .map(|&r| if r > 0.0 && !(0.25..=4.0).contains(&r) { 1.0 / r } else { 1.0 })
            .collect();
        let mut col_max = vec![0.0f64; n];
        a.for_each(|r, c, v| col_max[c] = col_max[c].max((v * row_scale[r]).abs()));
        let col_scale: Vec<f64> = col_max
            .iter()
            .map(|&c| if c > 0.0 && !(0.25..=4.0).contains(&c) { 1.0 / c } else { 1.0 })
            .collect();
        let mut sa = a;
        sa.scale(&row_scale, &col_scale);
        let sb: Vec<f64> = reduced.b.iter().zip(&row_scale).map(|(&v, &s)| v * s).collect();
        let scaled_costs: Vec<f64> =
            reduced.costs.iter().zip(&col_scale).map(|(&c, &s)| c * s).collect();

        // ---- Backend selection and warm-start lookup. ----
        let idx = force.unwrap_or_else(|| match self.selection {
            Selection::Fixed(idx) => idx,
            Selection::Auto => {
                if m <= DENSE_CUTOVER_ROWS && n <= DENSE_CUTOVER_COLS {
                    self.dense_idx
                } else {
                    // Size alone is not enough: a big basis only favors
                    // the LU factors when the system is sparse enough
                    // that they stay compact. Dense mid-size systems keep
                    // the explicit-inverse engine. Within the LU class
                    // the Forrest-Tomlin engine is preferred: these are
                    // the longest-pivot-run systems in the workload, and
                    // eta-free solves win exactly when the pivot runs
                    // between refactorizations are long (the eta-file
                    // `lu` backend stays selectable for differential
                    // racing).
                    let density = sa.nnz() as f64 / (m * n) as f64;
                    if m >= LU_CUTOVER_ROWS && density <= LU_MAX_DENSITY {
                        self.lu_ft_idx
                    } else {
                        self.sparse_idx
                    }
                }
            }
        });
        // Warm-start bookkeeping (pattern hash, cache lookup, hit/miss
        // counters) only for backends that can consume a basis; the
        // dense tableau's whole point is a minimal per-solve fixed cost.
        let warm_capable = self.backends[idx].supports_warm_start();
        let key = if warm_capable { sa.pattern_hash() } else { 0 };
        let mut warm = if warm_capable { self.cache.get(key) } else { None };
        // Read-through to the process-wide store on a session miss. A
        // shared entry may come from another request — or from a spill
        // file on disk — so it gets a shape check a session entry never
        // needs (`len == m`, indices `< n`); anything malformed is
        // treated as a miss, never offered to a backend.
        let mut warm_from_shared = false;
        if warm.is_none() && warm_capable {
            if let Some(shared) = &self.shared {
                if let Some(basis) = shared.get(key) {
                    if basis.len() == m && basis.iter().all(|&j| j < n) {
                        warm_from_shared = true;
                        warm = Some(basis);
                    } else {
                        shared.remove(key);
                    }
                }
            }
        }
        if let Some(basis) = warm.as_mut() {
            if self.fault_trip(Site::WarmLookup) {
                // Poison: duplicate the first slot everywhere, making the
                // warm basis singular. The backend's warm-start
                // validation must reject it and run cold.
                let first = basis[0];
                basis.iter_mut().for_each(|slot| *slot = first);
            }
        }

        // The in-backend injection sites (refactor, update pivots, FT
        // accuracy) read the plan through a thread-local installed only
        // for the duration of the call; the visit counters round-trip
        // back into the session.
        let backend_started = Instant::now();
        let prev = faults::install(self.faults.take());
        // Reoptimization mode: with a cached basis on a capable backend,
        // try dual pivots from the previous optimum first. `None` (stale
        // basis, lost dual feasibility, an injected dual-pivot fault, any
        // numerical doubt) falls straight through to the ordinary primal
        // path — reoptimization is a fast path, never a verdict source of
        // its own.
        let try_reopt = self.reopt && self.backends[idx].supports_reoptimize();
        let reopt_core = if try_reopt {
            warm.as_deref().and_then(|basis| {
                self.backends[idx].reoptimize_core(&scaled_costs, &sa, &sb, basis)
            })
        } else {
            None
        };
        let reopt_used = reopt_core.is_some();
        let core = match reopt_core {
            Some(core) => Ok(core),
            None => self.backends[idx].solve_core(&scaled_costs, &sa, &sb, warm.as_deref()),
        };
        self.faults = faults::install(prev);
        if try_reopt && warm.is_some() {
            self.stats.reopt_attempts += 1;
            if reopt_used {
                self.stats.reopt_successes += 1;
            }
        }
        let core = if self.fault_trip(Site::BackendCall) {
            // The real result (and any instance-capture wrapper's log of
            // it) already exists; only the session's view turns into the
            // fault.
            Err(LpError::PivotLimit)
        } else {
            core
        };
        let backend_wall = backend_started.elapsed().as_secs_f64();
        let name = self.backends[idx].name();
        let pivots = core.as_ref().map(|c| c.pivots).unwrap_or(0);
        self.stats.pivots += pivots;
        let tally = self.stats.tally_mut(name);
        tally.solves += 1;
        tally.pivots += pivots;
        tally.wall_seconds += backend_wall;
        let core = match core {
            Ok(core) => core,
            Err(e) => {
                return Attempt {
                    result: Err(e),
                    backend_idx: Some(idx),
                    warm_key: warm_capable.then_some(key),
                }
            }
        };
        self.stats.watchdog_restarts += core.watchdog_restarts;
        self.stats.watchdog_singular += core.watchdog_singular;
        self.stats.watchdog_infeasible += core.watchdog_infeasible;
        self.stats.bland_retries += core.bland_retries;
        self.stats.accuracy_refactors += core.accuracy_refactors;
        self.stats.bg_interchanges += core.bg_interchanges;
        self.stats.bg_max_growth = self.stats.bg_max_growth.max(core.bg_max_growth);
        if warm_capable {
            if core.warm_start_used {
                self.stats.warm_start_hits += 1;
                if warm_from_shared {
                    self.stats.persistent_warm_hits += 1;
                }
            } else {
                self.stats.warm_start_misses += 1;
            }
            if let Some(basis) = core.basis {
                // Only artificial-free bases are reusable. Write-through:
                // the final basis seeds both this session's next solve
                // and, via the shared store, every other session's.
                if basis.iter().all(|&j| j < n) {
                    if let Some(shared) = &self.shared {
                        shared.put(key, basis.clone());
                    }
                    self.stats.cache_evictions += self.cache.put(key, basis);
                }
            }
        }

        // Undo the column scaling (row scaling does not affect x).
        let mut x = core.x;
        for (xj, s) in x.iter_mut().zip(&col_scale) {
            *xj *= s;
        }
        let result = if restore.unbounded_if_feasible {
            // The reduced system is feasible, so the removed negative-cost
            // empty column really is an improving ray.
            Err(LpError::Unbounded)
        } else {
            Ok(restore.expand(&x))
        };
        Attempt { result, backend_idx: Some(idx), warm_key: warm_capable.then_some(key) }
    }
}

/// One [`LpSolver::attempt`]'s outcome, with the context the failover
/// ladder needs: which backend ran (None when presolve settled the
/// system before any backend) and the warm-start cache key it was seeded
/// under (None for warm-incapable backends).
struct Attempt {
    result: Result<Vec<f64>, LpError>,
    backend_idx: Option<usize>,
    warm_key: Option<u64>,
}

impl Attempt {
    /// An outcome decided before (or without) a backend run.
    fn verdict(result: Result<Vec<f64>, LpError>) -> Self {
        Attempt { result, backend_idx: None, warm_key: None }
    }
}

impl BackendTally {
    /// Exhaustive destructuring for the same reason as
    /// [`LpStats::merge`]: a new tally field must pick a merge rule here
    /// to compile.
    fn fold(&mut self, other: &BackendTally) {
        let BackendTally { name: _, solves, pivots, wall_seconds } = other;
        self.solves += solves;
        self.pivots += pivots;
        self.wall_seconds += wall_seconds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cmp, LinExpr};

    fn simple_lp(rhs: f64) -> LpBuilder {
        let mut lp = LpBuilder::new();
        let x = lp.add_var_nonneg("x");
        let y = lp.add_var_nonneg("y");
        lp.constrain(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Le, rhs);
        lp.maximize(LinExpr::new().term(x, 2.0).term(y, 1.0));
        lp
    }

    #[test]
    fn all_choices_agree_on_the_optimum() {
        for choice in [
            BackendChoice::Auto,
            BackendChoice::Sparse,
            BackendChoice::Dense,
            BackendChoice::Lu,
            BackendChoice::LuFt,
            BackendChoice::LuBg,
        ] {
            let mut solver = LpSolver::with_choice(choice);
            let sol = solver.solve(&simple_lp(3.0)).unwrap();
            assert!((sol.objective - 6.0).abs() < 1e-7, "{choice}: {}", sol.objective);
        }
    }

    #[test]
    fn auto_routes_by_size_and_density() {
        // Large and sparse (one singleton cap per variable, far past the
        // dense cutover): Auto must pick the LU backend.
        let mut solver = LpSolver::with_choice(BackendChoice::Auto);
        let mut lp = LpBuilder::new();
        let vars: Vec<_> = (0..LU_CUTOVER_ROWS + 8)
            .map(|j| lp.add_var_nonneg(format!("x{j}")))
            .collect();
        let mut sum = LinExpr::new();
        for (j, &v) in vars.iter().enumerate() {
            // Distinct caps so presolve keeps every row.
            lp.constrain(
                LinExpr::var(v, 1.0).term(vars[(j + 1) % vars.len()], 0.5),
                Cmp::Le,
                1.0 + j as f64,
            );
            sum = sum.term(v, 1.0);
        }
        lp.maximize(sum);
        solver.solve(&lp).unwrap();
        assert_eq!(solver.stats().backends.len(), 1);
        assert_eq!(
            solver.stats().backends[0].name,
            "lu-ft",
            "large sparse model routes to the Forrest–Tomlin engine"
        );
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut solver = LpSolver::with_choice(BackendChoice::Sparse);
        for rhs in [3.0, 4.0, 5.0] {
            solver.solve(&simple_lp(rhs)).unwrap();
        }
        let stats = solver.stats().clone();
        assert_eq!(stats.solves, 3);
        assert_eq!(stats.backends.len(), 1);
        assert_eq!(stats.backends[0].name, "sparse");
        assert_eq!(stats.backends[0].solves, 3);
        assert!(stats.warm_start_hits >= 1, "identical patterns must warm-start");
        let taken = solver.take_stats();
        assert_eq!(taken, stats);
        assert_eq!(solver.stats().solves, 0);
    }

    #[test]
    fn auto_routes_tiny_models_to_dense() {
        let mut solver = LpSolver::with_choice(BackendChoice::Auto);
        solver.solve(&simple_lp(3.0)).unwrap();
        assert_eq!(solver.stats().backends.len(), 1);
        assert_eq!(solver.stats().backends[0].name, "dense");
    }

    #[test]
    fn select_backend_by_name() {
        let mut solver = LpSolver::new();
        assert!(solver.select_backend("sparse"));
        assert!(!solver.select_backend("interior-point"));
        solver.solve(&simple_lp(3.0)).unwrap();
        assert_eq!(solver.stats().backends[0].name, "sparse");
    }

    #[test]
    fn lru_cache_bounded_with_correct_eviction() {
        // Capacity 2, three distinct sparsity patterns solved round-robin
        // repeatedly: the cache must evict, never exceed its bound, and
        // every solve must stay correct.
        let mut solver = LpSolver::with_choice(BackendChoice::Sparse);
        solver.set_cache_capacity(2);
        // Three patterns: different numbers of active columns.
        let build = |pattern: usize, rhs: f64| {
            let mut lp = LpBuilder::new();
            let vars: Vec<_> =
                (0..3 + pattern).map(|j| lp.add_var_nonneg(format!("x{j}"))).collect();
            let mut e = LinExpr::new();
            for (j, &v) in vars.iter().enumerate() {
                e = e.term(v, 1.0 + j as f64);
            }
            lp.constrain(e, Cmp::Le, rhs);
            for (j, &v) in vars.iter().enumerate() {
                lp.constrain(LinExpr::var(v, 1.0), Cmp::Le, rhs / (1.0 + j as f64));
            }
            lp.maximize(LinExpr::var(vars[0], 1.0));
            lp
        };
        for round in 0..4 {
            for pattern in 0..3 {
                let rhs = 6.0 + round as f64 + pattern as f64;
                let sol = solver.solve(&build(pattern, rhs)).unwrap();
                // x0 is capped by the singleton row x0 ≤ rhs.
                assert!(
                    (sol.objective - rhs).abs() < 1e-7,
                    "round {round} pattern {pattern}: {}",
                    sol.objective
                );
            }
        }
        assert!(solver.cache.map.len() <= 2, "cache exceeded its capacity");
        assert!(solver.stats().cache_evictions > 0, "rotation through 3 patterns must evict");
    }

    #[test]
    fn shrinking_capacity_evicts_down() {
        let mut solver = LpSolver::with_choice(BackendChoice::Sparse);
        for pattern in 0..3 {
            let mut lp = LpBuilder::new();
            let vars: Vec<_> =
                (0..3 + pattern).map(|j| lp.add_var_nonneg(format!("x{j}"))).collect();
            let mut e = LinExpr::new();
            for &v in &vars {
                e = e.term(v, 1.0);
            }
            lp.constrain(e, Cmp::Le, 1.0);
            for &v in &vars {
                lp.constrain(LinExpr::var(v, 1.0), Cmp::Le, 0.75);
            }
            lp.minimize(LinExpr::var(vars[0], 1.0));
            solver.solve(&lp).unwrap();
        }
        assert!(solver.cache.map.len() >= 2, "distinct patterns fill the cache");
        solver.set_cache_capacity(1);
        assert!(solver.cache.map.len() <= 1);
    }

    #[test]
    fn shared_cache_seeds_a_fresh_session() {
        let shared = Arc::new(SharedBasisCache::new(16));

        // Session A runs cold and publishes its final basis write-through.
        let mut a = LpSolver::with_choice(BackendChoice::Sparse);
        a.set_shared_cache(shared.clone());
        a.solve(&simple_lp(3.0)).unwrap();
        assert_eq!(a.stats().persistent_warm_hits, 0, "nothing to inherit yet");
        assert!(!shared.is_empty(), "write-through populates the shared store");

        // Session B has an empty *session* cache but the same shared
        // store: its very first solve of the pattern starts warm.
        let mut b = LpSolver::with_choice(BackendChoice::Sparse);
        b.set_shared_cache(shared.clone());
        let sol = b.solve(&simple_lp(4.0)).unwrap();
        assert!((sol.objective - 8.0).abs() < 1e-7, "{}", sol.objective);
        assert!(b.stats().warm_start_hits >= 1, "shared basis must be accepted");
        assert!(b.stats().persistent_warm_hits >= 1, "…and attributed to the shared store");
        assert!(
            b.stats().persistent_warm_hits <= b.stats().warm_start_hits,
            "persistent hits are a subset of warm hits"
        );
    }

    #[test]
    fn shared_cache_survives_a_spill_roundtrip() {
        let dir = std::env::temp_dir().join(format!("qava-solver-spill-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.warm");

        let shared = Arc::new(SharedBasisCache::new(16));
        let mut a = LpSolver::with_choice(BackendChoice::Sparse);
        a.set_shared_cache(shared.clone());
        a.solve(&simple_lp(3.0)).unwrap();
        shared.save(&path).unwrap();

        // "Daemon restart": a freshly loaded store, a fresh session — the
        // first solve of the pattern is still warm.
        let reloaded = Arc::new(SharedBasisCache::load(&path, 16).unwrap());
        let mut b = LpSolver::with_choice(BackendChoice::Sparse);
        b.set_shared_cache(reloaded);
        let sol = b.solve(&simple_lp(5.0)).unwrap();
        assert!((sol.objective - 10.0).abs() < 1e-7, "{}", sol.objective);
        assert!(b.stats().persistent_warm_hits >= 1, "spilled warmth must survive reload");
    }

    #[test]
    fn poisoned_shared_entries_cannot_break_solves() {
        let shared = Arc::new(SharedBasisCache::new(16));
        let mut a = LpSolver::with_choice(BackendChoice::Sparse);
        a.set_shared_cache(shared.clone());
        a.solve(&simple_lp(3.0)).unwrap();

        // Overwrite every shared entry with garbage a corrupted (but
        // checksum-valid) spill file could have produced: out-of-range
        // column indices at a plausible length.
        for key in shared.keys() {
            shared.put(key, vec![usize::MAX, usize::MAX, usize::MAX]);
        }
        let mut b = LpSolver::with_choice(BackendChoice::Sparse);
        b.set_shared_cache(shared.clone());
        let sol = b.solve(&simple_lp(3.0)).unwrap();
        assert!((sol.objective - 6.0).abs() < 1e-7, "poison must cost warmth, not the answer");
        assert_eq!(b.stats().persistent_warm_hits, 0, "garbage is never a hit");
        // The rejected entries were dropped, and B's own cold solve
        // re-published a good basis — a third session warm-starts again.
        let mut c = LpSolver::with_choice(BackendChoice::Sparse);
        c.set_shared_cache(shared);
        c.solve(&simple_lp(3.0)).unwrap();
        assert!(c.stats().persistent_warm_hits >= 1, "self-heals after poison");
    }

    proptest::proptest! {
        /// The warm-start cache must never exceed its capacity bound
        /// under arbitrary interleavings of inserts, lookups, failover
        /// removals, and capacity changes — including a raw shrink that
        /// leaves the map temporarily oversized, which the next insert's
        /// eviction loop must fully repair (a single-eviction `put`
        /// would leave the cache permanently over capacity).
        #[test]
        fn basis_cache_never_exceeds_capacity(
            ops in proptest::collection::vec((0u8..4u8, 0u8..8u8), 1..96),
        ) {
            let mut cache = BasisCache::new(3);
            for (op, k) in ops {
                let key = u64::from(k);
                match op {
                    0 => {
                        cache.put(key, vec![usize::from(k)]);
                        proptest::prop_assert!(
                            cache.map.len() <= cache.capacity,
                            "put left {} entries with capacity {}",
                            cache.map.len(),
                            cache.capacity
                        );
                    }
                    1 => {
                        cache.get(key);
                    }
                    // Failover invalidation path.
                    2 => {
                        cache.remove(key);
                    }
                    // Raw capacity change without the evict-down sweep
                    // `LpSolver::set_cache_capacity` performs — the
                    // worst case `put` must recover from.
                    _ => cache.capacity = 1 + usize::from(k % 3),
                }
            }
        }
    }

    #[test]
    fn backend_choice_from_args() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<String>>();
        assert_eq!(BackendChoice::from_args(&args(&["--other"])).unwrap(), None);
        assert_eq!(
            BackendChoice::from_args(&args(&["--lp-backend", "dense"])).unwrap(),
            Some(BackendChoice::Dense)
        );
        assert_eq!(
            BackendChoice::from_args(&args(&["--lp-backend", "lu"])).unwrap(),
            Some(BackendChoice::Lu)
        );
        assert_eq!(
            BackendChoice::from_args(&args(&["--lp-backend", "lu-ft"])).unwrap(),
            Some(BackendChoice::LuFt)
        );
        assert_eq!(
            BackendChoice::from_args(&args(&["--lp-backend", "lu-bg"])).unwrap(),
            Some(BackendChoice::LuBg)
        );
        assert_eq!(
            BackendChoice::from_args(&args(&["--lp-backend", "sparse", "--lp-backend", "auto"]))
                .unwrap(),
            Some(BackendChoice::Auto),
            "last occurrence wins"
        );
        assert!(BackendChoice::from_args(&args(&["--lp-backend"])).is_err());
        assert!(BackendChoice::from_args(&args(&["--lp-backend", "cuda"])).is_err());
    }

    #[test]
    fn cancellation_flag_stops_solves_at_boundaries() {
        let mut solver = LpSolver::with_choice(BackendChoice::Sparse);
        let flag = Arc::new(AtomicBool::new(false));
        solver.set_cancel_flag(flag.clone());
        // Flag down: solves run normally.
        solver.solve(&simple_lp(3.0)).unwrap();
        assert!(!solver.is_cancelled());
        // Flag up: every further solve returns Cancelled without work.
        flag.store(true, Ordering::Relaxed);
        assert!(solver.is_cancelled());
        let solves_before = solver.stats().solves;
        assert_eq!(solver.solve(&simple_lp(4.0)).unwrap_err(), LpError::Cancelled);
        assert_eq!(solver.stats().solves, solves_before, "cancelled solves are not counted");
        // Detaching the flag restores normal operation.
        solver.clear_cancel_flag();
        solver.solve(&simple_lp(5.0)).unwrap();
    }

    #[test]
    fn merge_stats_folds_external_counters() {
        let mut a = LpSolver::with_choice(BackendChoice::Sparse);
        a.solve(&simple_lp(3.0)).unwrap();
        let taken = a.take_stats();
        assert_eq!(a.stats().solves, 0);
        a.merge_stats(&taken);
        assert_eq!(a.stats(), &taken, "take + merge round-trips the session total");
    }

    /// A backend that always gives up — the raw material of the
    /// failover tests.
    struct AlwaysPivotLimit;

    impl LpBackend for AlwaysPivotLimit {
        fn name(&self) -> &'static str {
            "always-pivot-limit"
        }

        fn solve_core(
            &self,
            _costs: &[f64],
            _a: &CscMatrix,
            _b: &[f64],
            _warm: Option<&[usize]>,
        ) -> Result<CoreSolution, LpError> {
            Err(LpError::PivotLimit)
        }
    }

    #[test]
    fn failover_ladder_rescues_a_failing_backend() {
        let mut solver = LpSolver::new();
        solver.register_backend(Box::new(AlwaysPivotLimit));
        let sol = solver.solve(&simple_lp(3.0)).unwrap();
        assert!((sol.objective - 6.0).abs() < 1e-7);
        let stats = solver.stats();
        assert_eq!(stats.failovers, 1, "the top rung rescues immediately");
        assert_eq!(stats.failover_recoveries, 1);
        let names: Vec<_> = stats.backends.iter().map(|t| t.name).collect();
        assert_eq!(
            names,
            vec!["always-pivot-limit", "lu-ft"],
            "an external backend fails over to the top of the ladder"
        );
    }

    #[test]
    fn failover_disabled_surfaces_the_raw_error() {
        let mut solver = LpSolver::new();
        solver.register_backend(Box::new(AlwaysPivotLimit));
        solver.set_failover(false);
        assert_eq!(solver.solve(&simple_lp(3.0)).unwrap_err(), LpError::PivotLimit);
        assert_eq!(solver.stats().failovers, 0);
    }

    #[test]
    fn injected_pivot_limit_steps_down_one_rung() {
        let mut solver = LpSolver::with_choice(BackendChoice::LuFt);
        solver.install_fault_plan(FaultPlan::once(crate::FaultKind::PivotLimit));
        let sol = solver.solve(&simple_lp(3.0)).unwrap();
        assert!((sol.objective - 6.0).abs() < 1e-7);
        assert!(solver.fault_fired());
        let stats = solver.stats();
        assert_eq!(stats.failovers, 1);
        assert_eq!(stats.failover_recoveries, 1);
        let names: Vec<_> = stats.backends.iter().map(|t| t.name).collect();
        assert_eq!(names, vec!["lu-ft", "lu-bg"], "lu-ft steps down to lu-bg");
    }

    #[test]
    fn bottom_rung_failure_wraps_back_to_the_top() {
        // A transient fault on the dense oracle — the ladder's last rung
        // — must not strand the session: the walk wraps and the rungs
        // above get one shot each.
        let mut solver = LpSolver::with_choice(BackendChoice::Dense);
        solver.install_fault_plan(FaultPlan::once(crate::FaultKind::PivotLimit));
        let sol = solver.solve(&simple_lp(3.0)).unwrap();
        assert!((sol.objective - 6.0).abs() < 1e-7);
        assert!(solver.fault_fired());
        let stats = solver.stats();
        assert_eq!(stats.failovers, 1);
        assert_eq!(stats.failover_recoveries, 1);
        let names: Vec<_> = stats.backends.iter().map(|t| t.name).collect();
        assert_eq!(names, vec!["dense", "lu-ft"], "dense wraps to the top rung");
    }

    #[test]
    fn failover_invalidates_the_seeding_warm_start_entry() {
        let mut solver = LpSolver::with_choice(BackendChoice::Sparse);
        solver.solve(&simple_lp(3.0)).unwrap();
        solver.solve(&simple_lp(4.0)).unwrap();
        assert_eq!(solver.cache.map.len(), 1);
        assert!(solver.stats().warm_start_hits >= 1, "second solve warm-starts");
        // Third solve of the same pattern: the backend call "fails", so
        // the cached basis that seeded it must be dropped before the
        // ladder (here: sparse → dense) takes over.
        solver.install_fault_plan(FaultPlan::once(crate::FaultKind::PivotLimit));
        let sol = solver.solve(&simple_lp(5.0)).unwrap();
        assert!((sol.objective - 10.0).abs() < 1e-7);
        assert_eq!(
            solver.cache.map.len(),
            0,
            "the poisoned pattern's entry is gone (the dense rescue rung caches nothing)"
        );
        let names: Vec<_> = solver.stats().backends.iter().map(|t| t.name).collect();
        assert_eq!(names, vec!["sparse", "dense"]);
    }

    #[test]
    fn poisoned_warm_start_recovers_cold() {
        let mut solver = LpSolver::with_choice(BackendChoice::Lu);
        solver.solve(&simple_lp(3.0)).unwrap();
        solver.install_fault_plan(FaultPlan::once(crate::FaultKind::WarmPoison));
        let sol = solver.solve(&simple_lp(4.0)).unwrap();
        assert!((sol.objective - 8.0).abs() < 1e-7, "got {}", sol.objective);
        assert!(solver.fault_fired(), "the cache hit was poisoned");
        assert_eq!(solver.stats().failovers, 0, "cold restart absorbs it in-backend");
    }

    #[test]
    fn past_deadline_cancels_at_the_boundary() {
        let mut solver = LpSolver::with_choice(BackendChoice::Sparse);
        solver.solve(&simple_lp(3.0)).unwrap();
        solver.set_deadline(Instant::now());
        assert!(solver.deadline_expired());
        let solves_before = solver.stats().solves;
        assert_eq!(solver.solve(&simple_lp(4.0)).unwrap_err(), LpError::Cancelled);
        assert_eq!(solver.stats().solves, solves_before, "expired solves are not counted");
        solver.clear_deadline();
        solver.solve(&simple_lp(5.0)).unwrap();
    }

    #[test]
    fn injected_deadline_expiry_fires_once() {
        let mut solver = LpSolver::with_choice(BackendChoice::Sparse);
        solver.install_fault_plan(FaultPlan::once(crate::FaultKind::Deadline));
        assert_eq!(solver.solve(&simple_lp(3.0)).unwrap_err(), LpError::Cancelled);
        assert!(solver.fault_fired());
        solver.solve(&simple_lp(3.0)).unwrap();
    }

    /// The revised backends a reoptimization test must cover (the dense
    /// tableau has no basis to reoptimize from and silently declines).
    const REOPT_BACKENDS: [BackendChoice; 4] =
        [BackendChoice::Sparse, BackendChoice::Lu, BackendChoice::LuFt, BackendChoice::LuBg];

    #[test]
    fn reoptimize_matches_cold_solve_on_rhs_perturbation() {
        for choice in REOPT_BACKENDS {
            let mut solver = LpSolver::with_choice(choice);
            solver.solve(&simple_lp(3.0)).unwrap();
            // Perturbed RHS, same pattern: the reoptimized optimum must
            // equal the cold one exactly (both are certified optima).
            let sol = solver.reoptimize(&simple_lp(4.5)).unwrap();
            let mut cold = LpSolver::with_choice(choice);
            let want = cold.solve(&simple_lp(4.5)).unwrap();
            assert!(
                (sol.objective - want.objective).abs() < 1e-9,
                "{choice}: reopt {} vs cold {}",
                sol.objective,
                want.objective
            );
            assert_eq!(solver.stats().reopt_attempts, 1, "{choice}");
            assert_eq!(solver.stats().reopt_successes, 1, "{choice}");
        }
    }

    #[test]
    fn reoptimize_pivots_back_to_feasibility() {
        // Tightening the x-cap makes the previous optimal basis primal
        // infeasible (its slack goes negative), so this exercises a real
        // dual pivot, not just the zero-pivot feasibility re-check.
        let build = |cap: f64| {
            let mut lp = LpBuilder::new();
            let x = lp.add_var_nonneg("x");
            let y = lp.add_var_nonneg("y");
            lp.constrain(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Le, 1.0);
            lp.constrain(LinExpr::var(x, 1.0), Cmp::Le, cap);
            lp.maximize(LinExpr::new().term(x, 2.0).term(y, 1.0));
            lp
        };
        for choice in REOPT_BACKENDS {
            let mut solver = LpSolver::with_choice(choice);
            let first = solver.solve(&build(2.0)).unwrap();
            assert!((first.objective - 2.0).abs() < 1e-7, "{choice}: {}", first.objective);
            let sol = solver.reoptimize(&build(0.5)).unwrap();
            assert!((sol.objective - 1.5).abs() < 1e-7, "{choice}: {}", sol.objective);
            assert_eq!(solver.stats().reopt_attempts, 1, "{choice}");
            assert_eq!(solver.stats().reopt_successes, 1, "{choice}");
        }
    }

    #[test]
    fn reoptimize_without_cached_basis_runs_cold() {
        let mut solver = LpSolver::with_choice(BackendChoice::Sparse);
        let sol = solver.reoptimize(&simple_lp(3.0)).unwrap();
        assert!((sol.objective - 6.0).abs() < 1e-7);
        assert_eq!(solver.stats().reopt_attempts, 0, "no basis, no attempt");
        assert!(!solver.reoptimize_enabled(), "one-shot mode is restored");
    }

    #[test]
    fn successful_reoptimization_refreshes_the_cache_entry() {
        let mut solver = LpSolver::with_choice(BackendChoice::Sparse);
        solver.solve(&simple_lp(3.0)).unwrap();
        let key = *solver.cache.map.keys().next().expect("cold solve cached its basis");
        solver.reoptimize(&simple_lp(4.0)).unwrap();
        assert_eq!(solver.stats().reopt_successes, 1);
        let (_, used) = &solver.cache.map[&key];
        assert_eq!(
            *used, solver.cache.tick,
            "the reoptimized final basis re-touched the pattern entry"
        );
        // And the refreshed entry seeds the next point: a third solve of
        // the family reoptimizes again from it.
        solver.reoptimize(&simple_lp(5.0)).unwrap();
        assert_eq!(solver.stats().reopt_successes, 2);
    }

    #[test]
    fn tripped_dual_pivot_degrades_to_cold_solve() {
        for choice in REOPT_BACKENDS {
            let mut solver = LpSolver::with_choice(choice);
            solver.solve(&simple_lp(3.0)).unwrap();
            solver.install_fault_plan(FaultPlan::once(crate::FaultKind::DualPivot));
            let sol = solver.reoptimize(&simple_lp(4.0)).unwrap();
            assert!((sol.objective - 8.0).abs() < 1e-7, "{choice}: {}", sol.objective);
            assert!(solver.fault_fired(), "{choice}: the dual pivot site was reached");
            assert_eq!(solver.stats().reopt_attempts, 1, "{choice}");
            assert_eq!(
                solver.stats().reopt_successes,
                0,
                "{choice}: the tripped attempt fell back cold"
            );
        }
    }

    #[test]
    fn merge_combines_backend_tallies() {
        let mut a = LpSolver::with_choice(BackendChoice::Sparse);
        a.solve(&simple_lp(3.0)).unwrap();
        let mut b = LpSolver::with_choice(BackendChoice::Dense);
        b.solve(&simple_lp(4.0)).unwrap();
        let mut total = a.take_stats();
        total.merge(b.stats());
        assert_eq!(total.solves, 2);
        let names: Vec<_> = total.backends.iter().map(|t| t.name).collect();
        assert_eq!(names, vec!["sparse", "dense"]);
    }
}
