//! Warm-start basis caches: the per-session bounded LRU ([`BasisCache`])
//! and its process-wide, **persistent** promotion ([`SharedBasisCache`]).
//!
//! A session's cache amortizes factorization work across the LPs of one
//! synthesis run. The shared cache amortizes it across *runs*: a
//! `qavad` daemon installs one [`SharedBasisCache`] into every request
//! session ([`crate::LpSolver::set_shared_cache`]), so the very first
//! solve of a pattern the process has seen before starts from that
//! pattern's last optimal basis — and because the store spills to a
//! versioned on-disk file ([`SharedBasisCache::save`] /
//! [`SharedBasisCache::load`]), the warmth survives daemon restarts.
//!
//! # Persistence invariants
//!
//! * The file format is versioned (magic + version byte) and ends in an
//!   FNV-1a checksum of everything after the magic. [`SharedBasisCache::load`]
//!   rejects a truncated, garbage, wrong-version or bit-flipped file
//!   with a descriptive error; [`SharedBasisCache::load_or_cold`] turns
//!   that into a logged warning and a cold (empty) cache. Loading never
//!   panics.
//! * A loaded basis is **advisory, never trusted**: the solve pipeline
//!   validates shape (`len == m`, all indices `< n`) before offering it
//!   to a backend, and every warm-capable backend re-validates by
//!   refactorizing — a corrupted-but-well-formed entry degrades to a
//!   cold solve, it cannot poison a verdict (the same contract the
//!   `warm-poison` fault-injection site pins for the session cache).
//! * [`SharedBasisCache::save`] writes to a temporary sibling and
//!   renames, so a crash mid-spill leaves the previous file intact.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Bounded LRU map from LP sparsity pattern to final basis.
#[derive(Debug, Default)]
pub(crate) struct BasisCache {
    pub(crate) capacity: usize,
    /// Logical clock for recency; bumped on every touch.
    pub(crate) tick: u64,
    pub(crate) map: HashMap<u64, (Vec<usize>, u64)>,
}

impl BasisCache {
    pub(crate) fn new(capacity: usize) -> Self {
        BasisCache { capacity, tick: 0, map: HashMap::new() }
    }

    pub(crate) fn get(&mut self, key: u64) -> Option<Vec<usize>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key).map(|(basis, used)| {
            *used = tick;
            basis.clone()
        })
    }

    /// Inserts, returning the number of entries evicted to stay bounded.
    ///
    /// Evicts in a loop, not once: if the map is ever above capacity
    /// (e.g. after the bound shrank between touches), a single insert
    /// restores the invariant instead of leaving the cache permanently
    /// oversized. The existing entry for `key` is dropped up front —
    /// the insert overwrites it anyway — so the loop only ever has to
    /// make room for exactly one addition.
    pub(crate) fn put(&mut self, key: u64, basis: Vec<usize>) -> usize {
        if self.capacity == 0 {
            return 0;
        }
        self.tick += 1;
        self.map.remove(&key);
        let mut evicted = 0;
        while self.map.len() >= self.capacity && self.evict_lru() {
            evicted += 1;
        }
        self.map.insert(key, (basis, self.tick));
        evicted
    }

    /// Removes the least-recently-used entry (linear scan: the cache is
    /// small by construction). Returns `false` when empty.
    pub(crate) fn evict_lru(&mut self) -> bool {
        match self.map.iter().min_by_key(|(_, (_, used))| *used).map(|(&k, _)| k) {
            Some(victim) => {
                self.map.remove(&victim);
                true
            }
            None => false,
        }
    }

    /// Drops one entry (failover invalidation: a basis that led a
    /// backend into the ladder must not seed the next solve of the same
    /// pattern). Returns whether an entry existed.
    pub(crate) fn remove(&mut self, key: u64) -> bool {
        self.map.remove(&key).is_some()
    }

    pub(crate) fn clear(&mut self) {
        self.map.clear();
    }
}

/// Default capacity of a [`SharedBasisCache`]: far above the distinct
/// pattern count of the whole 36-row suite (a few hundred), so a
/// daemon's steady-state working set never thrashes.
pub const DEFAULT_SHARED_CACHE_CAPACITY: usize = 4096;

/// 7-byte magic + 1-byte format version. Bump the version byte on any
/// layout change: an old daemon reading a new file (or vice versa) must
/// start cold, not misinterpret bytes.
const MAGIC: &[u8; 8] = b"QAVWARM\x01";

/// A process-wide, thread-safe, **persistent** warm-start basis store:
/// the session [`BasisCache`] promoted to process state.
///
/// Sessions consult it read-through (session cache first, then this
/// store) and write-through (every reusable final basis lands in both),
/// so concurrent requests share warmth without sharing sessions. All
/// access is behind one mutex; the critical sections are clone-a-vec
/// sized, far below solve cost.
#[derive(Debug)]
pub struct SharedBasisCache {
    inner: Mutex<BasisCache>,
    /// Mutations since the last [`take_dirty`](Self::take_dirty); lets a
    /// daemon spill only when something changed.
    dirty: AtomicU64,
}

impl Default for SharedBasisCache {
    fn default() -> Self {
        Self::new(DEFAULT_SHARED_CACHE_CAPACITY)
    }
}

impl SharedBasisCache {
    /// An empty (cold) store with the given LRU capacity bound.
    pub fn new(capacity: usize) -> Self {
        SharedBasisCache {
            inner: Mutex::new(BasisCache::new(capacity)),
            dirty: AtomicU64::new(0),
        }
    }

    /// Looks up the basis cached for a sparsity-pattern hash.
    pub fn get(&self, key: u64) -> Option<Vec<usize>> {
        self.lock().get(key)
    }

    /// Stores the final basis for a pattern hash (LRU-bounded).
    pub fn put(&self, key: u64, basis: Vec<usize>) {
        self.lock().put(key, basis);
        self.dirty.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops a pattern's entry (failover invalidation reaches the shared
    /// store too: a basis that sent one request down the ladder must not
    /// seed the next request either).
    pub fn remove(&self, key: u64) {
        if self.lock().remove(key) {
            self.dirty.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of cached patterns.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the store is empty (cold).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the number of mutations since the last call, zeroing the
    /// counter — the daemon's "anything to spill?" probe.
    pub fn take_dirty(&self) -> u64 {
        self.dirty.swap(0, Ordering::Relaxed)
    }

    /// Snapshot of the cached pattern keys (test introspection).
    #[cfg(test)]
    pub(crate) fn keys(&self) -> Vec<u64> {
        self.lock().map.keys().copied().collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BasisCache> {
        // A poisoned mutex means another thread panicked mid-operation;
        // the map itself is always structurally valid (no partial
        // states), so recover the guard rather than propagating the
        // panic into every solve.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Serializes the store to `path` (temp-file + rename, so a crash
    /// mid-write leaves any previous spill intact).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the filesystem.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let body = {
            let guard = self.lock();
            // Stable ordering for reproducible files (and tests).
            let mut keys: Vec<u64> = guard.map.keys().copied().collect();
            keys.sort_unstable();
            let mut body = Vec::with_capacity(16 + keys.len() * 64);
            body.extend_from_slice(&(keys.len() as u32).to_le_bytes());
            for key in keys {
                let (basis, _) = &guard.map[&key];
                body.extend_from_slice(&key.to_le_bytes());
                body.extend_from_slice(&(basis.len() as u32).to_le_bytes());
                for &j in basis {
                    body.extend_from_slice(&(j as u32).to_le_bytes());
                }
            }
            body
        };
        let mut file = Vec::with_capacity(MAGIC.len() + body.len() + 8);
        file.extend_from_slice(MAGIC);
        file.extend_from_slice(&body);
        file.extend_from_slice(&fnv1a(&body).to_le_bytes());
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&file)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Deserializes a store previously written by [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// A descriptive message for every corruption class — missing file,
    /// truncation, wrong magic, wrong version, length overflow, checksum
    /// mismatch. Never panics: the caller's recovery is always "start
    /// cold".
    pub fn load(path: &Path, capacity: usize) -> Result<Self, String> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(format!("{}: truncated ({} bytes)", path.display(), bytes.len()));
        }
        if bytes[..7] != MAGIC[..7] {
            return Err(format!("{}: not a qava warm-start cache file", path.display()));
        }
        if bytes[7] != MAGIC[7] {
            return Err(format!(
                "{}: cache format version {} (this build reads {})",
                path.display(),
                bytes[7],
                MAGIC[7]
            ));
        }
        let body = &bytes[MAGIC.len()..bytes.len() - 8];
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
        if fnv1a(body) != stored {
            return Err(format!("{}: checksum mismatch (file corrupted)", path.display()));
        }
        let mut cur = Cursor { buf: body, pos: 0 };
        let count = cur.u32()? as usize;
        let cache = SharedBasisCache::new(capacity);
        {
            let mut guard = cache.lock();
            for _ in 0..count {
                let key = cur.u64()?;
                let len = cur.u32()? as usize;
                if len > body.len() / 4 {
                    return Err(format!("{}: basis length {len} overflows the file", path.display()));
                }
                let mut basis = Vec::with_capacity(len);
                for _ in 0..len {
                    basis.push(cur.u32()? as usize);
                }
                guard.put(key, basis);
            }
            if cur.pos != body.len() {
                return Err(format!(
                    "{}: {} trailing bytes after the last entry",
                    path.display(),
                    body.len() - cur.pos
                ));
            }
        }
        Ok(cache)
    }

    /// [`load`](Self::load) with the daemon's recovery policy baked in:
    /// a missing file is a normal cold start (no warning), any other
    /// load failure logs one warning to stderr and starts cold. Never
    /// panics, never refuses to start.
    pub fn load_or_cold(path: &Path, capacity: usize) -> Self {
        if !path.exists() {
            return SharedBasisCache::new(capacity);
        }
        match Self::load(path, capacity) {
            Ok(cache) => cache,
            Err(why) => {
                eprintln!("qava-lp: warm-start cache ignored, starting cold: {why}");
                SharedBasisCache::new(capacity)
            }
        }
    }
}

/// FNV-1a over a byte slice — the same cheap, dependency-free hash the
/// pattern hashing uses, here as the spill file's integrity check.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Bounds-checked little-endian reader over the spill file body; every
/// overrun is a descriptive `Err`, never a slice panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        if self.pos + n > self.buf.len() {
            return Err("cache file truncated mid-entry".to_string());
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("qava-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn populated() -> SharedBasisCache {
        let c = SharedBasisCache::new(64);
        c.put(11, vec![0, 3, 5]);
        c.put(22, vec![7]);
        c.put(33, vec![2, 2, 9, 1_000_000]);
        c
    }

    #[test]
    fn save_load_roundtrip() {
        let path = tmp("roundtrip.warm");
        populated().save(&path).unwrap();
        let back = SharedBasisCache::load(&path, 64).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.get(11), Some(vec![0, 3, 5]));
        assert_eq!(back.get(22), Some(vec![7]));
        assert_eq!(back.get(33), Some(vec![2, 2, 9, 1_000_000]));
        assert_eq!(back.get(44), None);
    }

    #[test]
    fn missing_file_is_a_quiet_cold_start() {
        let path = tmp("never-written.warm");
        let cache = SharedBasisCache::load_or_cold(&path, 8);
        assert!(cache.is_empty());
        assert!(SharedBasisCache::load(&path, 8).is_err(), "explicit load still reports");
    }

    #[test]
    fn truncated_file_starts_cold() {
        let path = tmp("truncated.warm");
        populated().save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for cut in [0, 3, MAGIC.len(), bytes.len() / 2, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let err = SharedBasisCache::load(&path, 64).unwrap_err();
            assert!(
                err.contains("truncated") || err.contains("checksum") || err.contains("not a qava"),
                "cut at {cut}: {err}"
            );
            assert!(SharedBasisCache::load_or_cold(&path, 64).is_empty());
        }
    }

    #[test]
    fn garbage_file_starts_cold() {
        let path = tmp("garbage.warm");
        std::fs::write(&path, b"{\"this\": \"is json, not a cache\", \"padding\": 123456789}")
            .unwrap();
        let err = SharedBasisCache::load(&path, 64).unwrap_err();
        assert!(err.contains("not a qava"), "{err}");
        assert!(SharedBasisCache::load_or_cold(&path, 64).is_empty());
    }

    #[test]
    fn wrong_version_starts_cold() {
        let path = tmp("version.warm");
        populated().save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[7] = 99;
        std::fs::write(&path, &bytes).unwrap();
        let err = SharedBasisCache::load(&path, 64).unwrap_err();
        assert!(err.contains("version 99"), "{err}");
        assert!(SharedBasisCache::load_or_cold(&path, 64).is_empty());
    }

    #[test]
    fn bit_flip_fails_the_checksum() {
        let path = tmp("bitflip.warm");
        populated().save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = MAGIC.len() + (bytes.len() - MAGIC.len() - 8) / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = SharedBasisCache::load(&path, 64).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
        assert!(SharedBasisCache::load_or_cold(&path, 64).is_empty());
    }

    #[test]
    fn oversized_length_field_is_rejected() {
        let path = tmp("oversized.warm");
        // Hand-build a file claiming one entry with a 2^31-element basis
        // but no data behind it — the length sanity check must fire
        // before any allocation of that size.
        let mut body = Vec::new();
        body.extend_from_slice(&1u32.to_le_bytes());
        body.extend_from_slice(&77u64.to_le_bytes());
        body.extend_from_slice(&0x8000_0000u32.to_le_bytes());
        let mut file = MAGIC.to_vec();
        file.extend_from_slice(&body);
        file.extend_from_slice(&fnv1a(&body).to_le_bytes());
        std::fs::write(&path, &file).unwrap();
        let err = SharedBasisCache::load(&path, 64).unwrap_err();
        assert!(err.contains("overflows"), "{err}");
    }

    #[test]
    fn load_respects_the_capacity_bound() {
        let path = tmp("bounded.warm");
        let big = SharedBasisCache::new(64);
        for k in 0..10 {
            big.put(k, vec![k as usize]);
        }
        big.save(&path).unwrap();
        let small = SharedBasisCache::load(&path, 4).unwrap();
        assert_eq!(small.len(), 4, "loading re-applies the LRU bound");
    }

    #[test]
    fn dirty_counter_tracks_mutations() {
        let c = SharedBasisCache::new(8);
        assert_eq!(c.take_dirty(), 0);
        c.put(1, vec![0]);
        c.put(2, vec![1]);
        c.get(1);
        c.remove(9); // absent: not a mutation
        assert_eq!(c.take_dirty(), 2);
        c.remove(1);
        assert_eq!(c.take_dirty(), 1);
        assert_eq!(c.take_dirty(), 0);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = std::sync::Arc::new(SharedBasisCache::new(32));
        std::thread::scope(|s| {
            for t in 0..8 {
                let cache = cache.clone();
                s.spawn(move || {
                    for i in 0..200u64 {
                        cache.put(t * 1000 + (i % 40), vec![t as usize, i as usize]);
                        cache.get(i % 40);
                        if i % 17 == 0 {
                            cache.remove(i % 40);
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= 32, "LRU bound holds under concurrency");
    }
}
