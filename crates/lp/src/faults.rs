//! Deterministic fault-injection plane for the LP solver.
//!
//! A [`FaultPlan`] is a *one-shot* fault armed at a specific injection
//! site: the plan names a [`FaultKind`], and fires the `nth` time its
//! site is reached, then never again. Plans are installed per
//! [`LpSolver`](crate::LpSolver) session — either programmatically via
//! `install_fault_plan` or from the `QAVA_LP_FAULTS` environment
//! variable — and are threaded into the simplex core through a
//! thread-local while the backend runs, so the injection sites inside
//! `revised`/`eta`/`ft` need no plumbing through every signature.
//!
//! Fault specs (for `QAVA_LP_FAULTS` and [`FaultPlan::parse`]):
//!
//! ```text
//! refactor-fail[:N]   Nth basis refactorization reports singular
//! shaky-pivot[:N]     Nth eta/FT/BG update sees a below-threshold pivot
//! accuracy-trip[:N]   Nth FT accuracy check reports drift
//! bg-accuracy[:N]     Nth BG accuracy check reports drift
//! pivot-limit[:N]     Nth backend call's result becomes PivotLimit
//! warm-poison[:N]     Nth warm-start lookup returns a corrupted basis
//! dual-pivot[:N]      Nth dual-simplex pivot aborts the reoptimization
//! deadline[:N]        Nth solve boundary behaves as an expired deadline
//! chaos:SEED          a pseudo-random recoverable fault derived from SEED
//! ```
//!
//! `N` defaults to 1 and is 1-based. Everything is deterministic: the
//! same plan against the same workload trips at the same site, which is
//! what makes the chaos suite's "certified bound within 1e-7 of the
//! fault-free value" assertion meaningful.

use std::cell::{Cell, RefCell};

/// The kinds of fault the plane can inject.
///
/// All but [`FaultKind::Deadline`] are *recoverable*: the solver's
/// in-backend recovery (watchdog refactorization, Bland retry) or the
/// session failover ladder is expected to absorb them and still produce
/// a certified verdict. `Deadline` simulates an expired per-request
/// deadline and surfaces as [`LpError::Cancelled`](crate::LpError).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A basis refactorization transiently reports "singular".
    RefactorFail,
    /// An eta/FT update pivot is treated as numerically shaky.
    ShakyPivot,
    /// The Forrest–Tomlin accuracy check reports determinant drift.
    AccuracyTrip,
    /// The Bartels–Golub accuracy check reports determinant drift.
    BgAccuracy,
    /// A backend call's successful result is replaced by `PivotLimit`.
    PivotLimit,
    /// A warm-start basis from the cache is corrupted before use.
    WarmPoison,
    /// A dual-simplex reoptimization pivot aborts mid-flight, forcing
    /// the session to degrade to a cold primal solve.
    DualPivot,
    /// A solve boundary behaves as if the request deadline expired.
    Deadline,
}

/// The recoverable kinds, in spec order (used by [`FaultPlan::chaos`]).
const RECOVERABLE: [FaultKind; 7] = [
    FaultKind::RefactorFail,
    FaultKind::ShakyPivot,
    FaultKind::AccuracyTrip,
    FaultKind::BgAccuracy,
    FaultKind::PivotLimit,
    FaultKind::WarmPoison,
    FaultKind::DualPivot,
];

/// Where in the solve pipeline a fault can trip. Each [`FaultKind`]
/// maps to exactly one site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Site {
    /// `Revised::refactor` — a full basis refactorization.
    Refactor,
    /// `LuBasis::update` / `FtBasis::update` — the incremental pivot.
    UpdatePivot,
    /// `FtBasis::update` — the post-update accuracy check.
    FtAccuracy,
    /// `BgBasis::update` — the post-update accuracy check.
    BgAccuracy,
    /// The session's call into `LpBackend::solve_core`.
    BackendCall,
    /// A warm-start cache hit, before the basis is used.
    WarmLookup,
    /// `Revised::run_dual` — a dual-simplex reoptimization pivot.
    DualPivot,
    /// Entry to `solve_std_rows`, where deadlines are enforced.
    SolveBoundary,
}

impl FaultKind {
    pub(crate) fn site(self) -> Site {
        match self {
            FaultKind::RefactorFail => Site::Refactor,
            FaultKind::ShakyPivot => Site::UpdatePivot,
            FaultKind::AccuracyTrip => Site::FtAccuracy,
            FaultKind::BgAccuracy => Site::BgAccuracy,
            FaultKind::PivotLimit => Site::BackendCall,
            FaultKind::WarmPoison => Site::WarmLookup,
            FaultKind::DualPivot => Site::DualPivot,
            FaultKind::Deadline => Site::SolveBoundary,
        }
    }

    /// The spec string for this kind (inverse of parsing).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::RefactorFail => "refactor-fail",
            FaultKind::ShakyPivot => "shaky-pivot",
            FaultKind::AccuracyTrip => "accuracy-trip",
            FaultKind::BgAccuracy => "bg-accuracy",
            FaultKind::PivotLimit => "pivot-limit",
            FaultKind::WarmPoison => "warm-poison",
            FaultKind::DualPivot => "dual-pivot",
            FaultKind::Deadline => "deadline",
        }
    }

    fn from_label(s: &str) -> Option<FaultKind> {
        Some(match s {
            "refactor-fail" => FaultKind::RefactorFail,
            "shaky-pivot" => FaultKind::ShakyPivot,
            "accuracy-trip" => FaultKind::AccuracyTrip,
            "bg-accuracy" => FaultKind::BgAccuracy,
            "pivot-limit" => FaultKind::PivotLimit,
            "warm-poison" => FaultKind::WarmPoison,
            "dual-pivot" => FaultKind::DualPivot,
            "deadline" => FaultKind::Deadline,
            _ => return None,
        })
    }
}

/// A one-shot fault plan: fire `kind` the `nth` time its site is
/// reached, then stay quiet.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    kind: FaultKind,
    nth: usize,
    seen: usize,
    fired: bool,
}

impl FaultPlan {
    /// A plan that fires `kind` on the `nth` (1-based) visit to its
    /// site. `nth` of 0 is treated as 1.
    pub fn new(kind: FaultKind, nth: usize) -> Self {
        FaultPlan { kind, nth: nth.max(1), seen: 0, fired: false }
    }

    /// A plan that fires `kind` on the first visit to its site.
    pub fn once(kind: FaultKind) -> Self {
        FaultPlan::new(kind, 1)
    }

    /// A pseudo-random *recoverable* single-fault plan derived
    /// deterministically from `seed` — the chaos suite's generator.
    /// Deadline faults are excluded: chaos mode asserts every row still
    /// certifies, and a simulated deadline expiry is designed not to.
    pub fn chaos(seed: u64) -> Self {
        let mut s = splitmix64(seed);
        let kind = RECOVERABLE[(s % RECOVERABLE.len() as u64) as usize];
        s = splitmix64(s);
        FaultPlan::new(kind, 1 + (s % 4) as usize)
    }

    /// Parses a fault spec (`kind[:N]` or `chaos:SEED`); see the module
    /// docs for the grammar.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (head, tail) = match spec.split_once(':') {
            Some((h, t)) => (h, Some(t)),
            None => (spec, None),
        };
        if head == "chaos" {
            let seed: u64 = tail
                .ok_or("chaos needs a seed: chaos:SEED")?
                .parse()
                .map_err(|_| format!("bad chaos seed in `{spec}`"))?;
            return Ok(FaultPlan::chaos(seed));
        }
        let kind = FaultKind::from_label(head).ok_or_else(|| {
            format!(
                "unknown fault kind `{head}` (expected refactor-fail, shaky-pivot, \
                 accuracy-trip, bg-accuracy, pivot-limit, warm-poison, dual-pivot, \
                 deadline, or chaos:SEED)"
            )
        })?;
        let nth = match tail {
            Some(t) => t.parse().map_err(|_| format!("bad fault count in `{spec}`"))?,
            None => 1,
        };
        Ok(FaultPlan::new(kind, nth))
    }

    /// The fault kind this plan injects.
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// Which visit to the site fires the fault (1-based).
    pub fn nth(&self) -> usize {
        self.nth
    }

    /// Whether the fault has fired.
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// The spec string that reproduces this plan (`kind:N`).
    pub fn label(&self) -> String {
        format!("{}:{}", self.kind.label(), self.nth)
    }

    /// Called at an injection site: returns true iff the fault fires
    /// here and now. At most one `true` per plan, ever.
    pub(crate) fn arm(&mut self, site: Site) -> bool {
        if self.fired || self.kind.site() != site {
            return false;
        }
        self.seen += 1;
        if self.seen == self.nth {
            self.fired = true;
            true
        } else {
            false
        }
    }
}

/// Reads a plan from `QAVA_LP_FAULTS`, panicking loudly on a malformed
/// spec — a silently ignored fault plan would defeat the whole point.
pub(crate) fn from_env() -> Option<FaultPlan> {
    let spec = std::env::var("QAVA_LP_FAULTS").ok()?;
    let spec = spec.trim();
    if spec.is_empty() {
        return None;
    }
    match FaultPlan::parse(spec) {
        Ok(plan) => Some(plan),
        Err(e) => panic!("QAVA_LP_FAULTS: {e}"),
    }
}

thread_local! {
    /// The plan active for the backend call currently running on this
    /// thread (installed by the session around `solve_core`).
    static ACTIVE: RefCell<Option<FaultPlan>> = const { RefCell::new(None) };
    /// Fast-path mirror of `ACTIVE.is_some()` so the hot simplex loop
    /// pays one `Cell` read when no fault plane is installed.
    static ARMED: Cell<bool> = const { Cell::new(false) };
}

/// Swaps the thread-active plan, returning the previous one. The
/// session installs its plan around each backend call and takes it back
/// afterwards (round-tripping the visit counters).
pub(crate) fn install(plan: Option<FaultPlan>) -> Option<FaultPlan> {
    ARMED.with(|a| a.set(plan.is_some()));
    ACTIVE.with(|p| std::mem::replace(&mut *p.borrow_mut(), plan))
}

/// Probes the thread-active plan at an injection site. Returns true iff
/// an installed plan fires here. No plan → false, at `Cell`-read cost.
pub(crate) fn trip(site: Site) -> bool {
    if !ARMED.with(|a| a.get()) {
        return false;
    }
    ACTIVE.with(|p| p.borrow_mut().as_mut().is_some_and(|plan| plan.arm(site)))
}

/// SplitMix64 — the standard 64-bit seed mixer; good avalanche from
/// sequential or structured seeds, which is exactly what the chaos
/// suite feeds it.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for kind in [
            FaultKind::RefactorFail,
            FaultKind::ShakyPivot,
            FaultKind::AccuracyTrip,
            FaultKind::BgAccuracy,
            FaultKind::PivotLimit,
            FaultKind::WarmPoison,
            FaultKind::DualPivot,
            FaultKind::Deadline,
        ] {
            let plan = FaultPlan::parse(kind.label()).unwrap();
            assert_eq!(plan.kind(), kind);
            assert_eq!(plan.nth(), 1);
            let plan = FaultPlan::parse(&format!("{}:3", kind.label())).unwrap();
            assert_eq!(plan.kind(), kind);
            assert_eq!(plan.nth(), 3);
            assert_eq!(FaultPlan::parse(&plan.label()).unwrap().nth(), 3);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("segfault").is_err());
        assert!(FaultPlan::parse("refactor-fail:x").is_err());
        assert!(FaultPlan::parse("chaos").is_err());
        assert!(FaultPlan::parse("chaos:banana").is_err());
    }

    #[test]
    fn arm_fires_exactly_once_at_nth_visit() {
        let mut plan = FaultPlan::new(FaultKind::RefactorFail, 3);
        assert!(!plan.arm(Site::Refactor));
        assert!(!plan.arm(Site::UpdatePivot), "wrong site never fires");
        assert!(!plan.arm(Site::Refactor));
        assert!(!plan.fired());
        assert!(plan.arm(Site::Refactor), "third visit fires");
        assert!(plan.fired());
        assert!(!plan.arm(Site::Refactor), "one-shot: never again");
    }

    #[test]
    fn chaos_is_deterministic_and_recoverable() {
        for seed in 0..64u64 {
            let a = FaultPlan::chaos(seed);
            let b = FaultPlan::chaos(seed);
            assert_eq!(a.kind(), b.kind());
            assert_eq!(a.nth(), b.nth());
            assert_ne!(a.kind(), FaultKind::Deadline, "chaos avoids deadlines");
            assert!((1..=4).contains(&a.nth()));
        }
        // Different seeds reach different kinds (avalanche sanity).
        let kinds: std::collections::HashSet<_> =
            (0..64u64).map(|s| FaultPlan::chaos(s).kind().label()).collect();
        assert!(kinds.len() >= 4, "chaos covers the kind space: {kinds:?}");
    }

    #[test]
    fn install_and_trip_round_trip() {
        let prev = install(Some(FaultPlan::once(FaultKind::ShakyPivot)));
        assert!(prev.is_none());
        assert!(!trip(Site::Refactor));
        assert!(trip(Site::UpdatePivot));
        assert!(!trip(Site::UpdatePivot), "one-shot through the thread-local too");
        let back = install(None).expect("plan still installed");
        assert!(back.fired());
        assert!(!trip(Site::UpdatePivot), "uninstalled plane is inert");
    }
}
