#![warn(missing_docs)]

//! A self-contained linear-programming solver with runtime-pluggable
//! backends.
//!
//! Everything in `qava` that goes through Farkas' lemma — repulsing-ranking-
//! supermartingale synthesis (§5.1 of the paper), Handelman certificates,
//! the Jensen-strengthened lower-bound LP (§6), polyhedron emptiness and
//! implication checks — ends in a linear program. This crate provides:
//!
//! * [`LpBuilder`] — incremental model construction with named variables and
//!   sparse [`LinExpr`] linear expressions;
//! * the [`LpBackend`] **trait** — the runtime-dispatchable core-solver
//!   interface — with **five** built-in implementations:
//!   * [`DenseTableau`] — the two-phase tableau; minimal fixed cost for
//!     µs-scale models, and the differential-testing oracle (also
//!     exported standalone as [`solve_standard_dense`]);
//!   * [`SparseRevised`] — revised simplex over CSC columns with an
//!     explicit dense basis inverse: O(m²) rank-one updates, unbeatable
//!     constants on small/dense bases;
//!   * [`LuSimplex`] (`lu`) — the same pivoting loop over a **sparse LU
//!     factorization with product-form eta updates**: each pivot appends
//!     one O(nnz) eta vector, ftran/btran run through the
//!     Markowitz-ordered L/U factors plus the eta stack, and
//!     refactorization is driven by eta-count/fill-in/accuracy
//!     thresholds;
//!   * [`LuFtSimplex`] (`lu-ft`) — the same factorization with
//!     **Forrest–Tomlin spike swaps**: basis exchanges edit the U factor
//!     in place (column replacement + row-permutation rotation + one
//!     sparse spike-row eta), so solves stay O(nnz(L) + nnz(U)) between
//!     refactorizations with no eta stack to traverse; refactorization
//!     is driven by U fill-in growth and spike-pivot magnitude;
//!   * [`LuBgSimplex`] (`lu-bg`) — the same factorization with
//!     **Bartels–Golub updates**: the spike row is eliminated with
//!     partial pivoting — at each step the chased row *interchanges*
//!     with the diagonal's row whenever its entry is the larger, so
//!     every elimination multiplier is bounded by one and a tiny spike
//!     pivot swaps instead of amplifying, at the cost of extra row
//!     fill; stability accounting (interchanges, spike-pivot growth,
//!     accuracy-triggered refactorizations) flows into [`LpStats`].
//!
//!   The LU update schemes share everything but the update algebra,
//!   so they can be differentially raced against each other (and the
//!   dense oracle) — the conformance corpus in `tests/corpus/` and the
//!   metamorphic suite in `tests/prop.rs` do exactly that;
//! * the [`LpSolver`] **session** — one per synthesis run — owning the
//!   shared pipeline (presolve: empty/duplicate-row removal and
//!   fixed-variable elimination; max-norm equilibration), the backend
//!   selection policy ([`BackendChoice`]: `auto` routes by size **and**
//!   density — µs-scale models to the dense tableau, large sparse
//!   systems to the Forrest–Tomlin LU simplex, mid-size/dense ones to
//!   the dense-inverse revised simplex), a bounded-LRU warm-start basis
//!   cache keyed by LP sparsity pattern, and per-solve statistics
//!   ([`LpStats`]: pivots, presolve reductions, warm-start hits,
//!   feasibility-watchdog restarts, anti-cycling retries, dual
//!   reoptimizations, wall time). Sessions offer **dual-simplex
//!   reoptimization** ([`LpSolver::reoptimize`], or session-wide via
//!   [`LpSolver::set_reoptimize`]) for parametric families: when a
//!   solve's reduced pattern has a cached final basis, the revised
//!   backends refactorize that basis once and — while it still prices
//!   out dual-feasible, which RHS-only perturbations guarantee — run
//!   dual pivots back to primal feasibility instead of a cold two-phase
//!   solve, with unchanged verdict certification and an unconditional
//!   cold fallback on any numerical doubt.
//!   Sessions also carry an optional **cooperative cancellation flag**
//!   ([`LpSolver::set_cancel_flag`]), polled once per solve boundary:
//!   once raised, further solves return [`LpError::Cancelled`] without
//!   work — the engine-racing layer in `qava-core` winds down losing
//!   candidates through it, never interrupting a solve in flight;
//! * exact infeasibility / unboundedness reporting via [`LpError`].
//!
//! The synthesis LPs routinely reach hundreds of rows and thousands of
//! columns at a few percent density; the revised method prices columns in
//! O(nnz), and on a basis that sparse the LU representations keep the
//! whole per-pivot hot path at O(nnz) too.
//!
//! The `dense-simplex` cargo feature is a thin default-backend switch: it
//! only changes [`BackendChoice::default`] (and thus new sessions and the
//! free-function shims) to the dense tableau. All backends are always
//! compiled and always selectable at runtime.
//!
//! # Failure semantics
//!
//! The session's contract under degradation is: **a verdict is only ever
//! produced by a backend run that actually succeeded** — never
//! reconstructed from a failed run's partial state.
//!
//! * **In-backend recovery** comes first: the feasibility watchdog
//!   refactorizes mid-run and falls back from a warm to a cold start,
//!   and a cold run that loses feasibility under Dantzig pricing is
//!   retried under Bland's rule. [`LpStats`] counts these
//!   (`watchdog_restarts`, split into `watchdog_singular` /
//!   `watchdog_infeasible` by cause, and `bland_retries`).
//! * **The failover ladder** comes second: if a built-in backend still
//!   returns [`LpError::PivotLimit`], the session invalidates the
//!   warm-start cache entry that seeded the failed run and steps down
//!   `lu-ft → lu-bg → lu → sparse → dense`, re-running the full pipeline
//!   (presolve + equilibration) on each rung. Each step increments
//!   `LpStats::failovers`; a rung that succeeds increments
//!   `LpStats::failover_recoveries` and its verdict is the session's.
//!   `Infeasible`/`Unbounded` are *verdicts*, not faults — they return
//!   immediately without failover. [`LpSolver::set_failover`] disables
//!   the ladder for callers that want raw backend behavior.
//! * **Dual-simplex reoptimization is a fast path, never a verdict
//!   source**: an attempt abandoned for any reason — a stale or
//!   singular cached basis, lost dual feasibility after an objective
//!   change, a dual-degenerate stall, an injected `dual-pivot` fault —
//!   degrades to the ordinary cold primal solve, so reoptimization can
//!   change solve cost but not results.
//! * **Deadlines and cancellation** share one boundary: a raised cancel
//!   flag ([`LpSolver::set_cancel_flag`]) or an expired deadline
//!   ([`LpSolver::set_deadline`]) makes the next solve return
//!   [`LpError::Cancelled`] before any work; solves in flight are never
//!   interrupted.
//! * **Fault injection** ([`faults`], env-gated via `QAVA_LP_FAULTS`)
//!   exercises all of the above deterministically: every injected
//!   transient fault must be absorbed by recovery or the ladder without
//!   moving any certified objective beyond the conformance tolerance —
//!   the chaos suite (`qava --suite --chaos SEED`) asserts exactly that.
//!
//! # Examples
//!
//! Building and solving through an explicit session (what the synthesis
//! layers do — every LP of a run shares one session, so structurally
//! identical solves warm-start each other):
//!
//! ```
//! use qava_lp::{Cmp, LinExpr, LpBuilder, LpSolver};
//!
//! let mut solver = LpSolver::new();
//! let mut lp = LpBuilder::new();
//! let x = lp.add_var("x");
//! let y = lp.add_var("y");
//! lp.constrain(LinExpr::new().term(x, 1.0).term(y, 2.0), Cmp::Le, 14.0);
//! lp.constrain(LinExpr::new().term(x, 3.0).term(y, -1.0), Cmp::Ge, 0.0);
//! lp.constrain(LinExpr::new().term(x, 1.0).term(y, -1.0), Cmp::Le, 2.0);
//! lp.maximize(LinExpr::new().term(x, 3.0).term(y, 4.0));
//! let sol = solver.solve(&lp)?;
//! assert!((sol.objective - 34.0).abs() < 1e-7);
//! assert_eq!(solver.stats().solves, 1);
//! # Ok::<(), qava_lp::LpError>(())
//! ```
//!
//! # Registering and selecting backends
//!
//! Sessions are born with the four built-ins, selected by policy or by
//! name; external backends implement [`LpBackend`] against the
//! presolved/equilibrated core form and plug in without touching any
//! synthesis code:
//!
//! ```
//! use qava_lp::{BackendChoice, CoreSolution, CscMatrix, LpBackend, LpError, LpSolver};
//!
//! struct MyBackend;
//! impl LpBackend for MyBackend {
//!     fn name(&self) -> &'static str { "mine" }
//!     fn solve_core(
//!         &self,
//!         _costs: &[f64],
//!         _a: &CscMatrix,
//!         _b: &[f64],
//!         _warm: Option<&[usize]>,
//!     ) -> Result<CoreSolution, LpError> {
//!         Err(LpError::PivotLimit) // a real backend solves here
//!     }
//! }
//!
//! let mut solver = LpSolver::with_choice(BackendChoice::Sparse);
//! solver.register_backend(Box::new(MyBackend)); // registered AND selected
//! assert_eq!(solver.backend_names(), vec!["sparse", "dense", "lu", "lu-ft", "lu-bg", "mine"]);
//! assert!(solver.select_backend("lu-ft")); // …and back to a built-in
//! ```

mod bg;
mod cache;
mod csc;
mod eta;
mod expr;
pub mod faults;
mod ft;
mod lu;
mod presolve;
mod revised;
mod simplex;
mod solver;

pub use cache::{SharedBasisCache, DEFAULT_SHARED_CACHE_CAPACITY};
/// The process-wide SIMD kernel provenance string ([`LpStats`] footers
/// embed it; re-exported so stats consumers one layer up don't need a
/// direct `qava-linalg` dependency to label their own reports).
pub use qava_linalg::kernel::provenance as kernel_provenance;
pub use csc::CscMatrix;
pub use expr::{LinExpr, VarId};
pub use faults::{FaultKind, FaultPlan};
pub use simplex::{solve_standard_dense, MAX_PIVOTS};
pub use solver::{
    BackendChoice, BackendTally, CoreSolution, DenseTableau, LpBackend, LpSolver, LpStats,
    LuBgSimplex, LuFtSimplex, LuSimplex, SparseRevised,
};

/// Test-facing introspection into the revised-simplex core. Not part of
/// the stable API: the metamorphic suite (`tests/prop.rs`) uses it to
/// assert that the Forrest–Tomlin and eta-file engines visit identical
/// pivot sequences, which localizes any divergence to the basis-update
/// algebra rather than the shared pricing loop.
#[doc(hidden)]
pub mod debug {
    use crate::csc::CscMatrix;
    use crate::revised;
    use crate::LpError;

    /// Which basis engine a [`trace_pivots`] run drives.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TraceEngine {
        /// Explicit dense inverse (the `sparse` backend's engine).
        DenseInverse,
        /// LU factors + product-form eta file (`lu`).
        LuEta,
        /// LU factors + Forrest–Tomlin spike swaps (`lu-ft`).
        LuFt,
        /// LU factors + Bartels–Golub interchanging updates (`lu-bg`).
        LuBg,
    }

    /// Runs the cold two-phase revised simplex on an (already standard
    /// form, `b ≥ 0`) system with the given engine, recording every
    /// pivot as `(entering column, leaving slot)`.
    ///
    /// Returns the recorded pivot sequence alongside the outcome:
    /// `Ok(Some(x))` on an optimum, `Ok(None)` when the feasibility
    /// watchdog abandoned the run (no retry is attempted here — the
    /// trace must reflect a single deterministic run).
    ///
    /// # Errors
    ///
    /// [`LpError::Infeasible`], [`LpError::Unbounded`], or
    /// [`LpError::PivotLimit`], with the partial trace attached.
    #[allow(clippy::type_complexity)]
    pub fn trace_pivots(
        engine: TraceEngine,
        costs: &[f64],
        a: &CscMatrix,
        b: &[f64],
        force_bland: bool,
    ) -> (Result<Option<Vec<f64>>, LpError>, Vec<(usize, usize)>) {
        let engine = match engine {
            TraceEngine::DenseInverse => revised::TraceEngine::DenseInverse,
            TraceEngine::LuEta => revised::TraceEngine::LuEta,
            TraceEngine::LuFt => revised::TraceEngine::LuFt,
            TraceEngine::LuBg => revised::TraceEngine::LuBg,
        };
        revised::trace_cold_pivots(engine, costs, a, b, force_bland)
    }

    /// Bench hook: factorizes once, applies a fixed greedy chain of
    /// `updates` basis exchanges on `a` (no refactorization ever), then
    /// runs `solves` rounds of one sparse ftran + one dense btran —
    /// measuring exactly the "ftran/btran work at equal refactorization
    /// counts" the basis-update schemes compete on. The chain is
    /// deterministic, so every engine replays the identical exchanges.
    pub fn update_solve_cycle(
        engine: TraceEngine,
        a: &CscMatrix,
        updates: usize,
        solves: usize,
    ) -> f64 {
        match engine {
            TraceEngine::DenseInverse => {
                crate::revised::update_solve_cycle::<crate::revised::DenseInverse>(
                    a, updates, solves,
                )
            }
            TraceEngine::LuEta => {
                crate::revised::update_solve_cycle::<crate::eta::LuBasis>(a, updates, solves)
            }
            TraceEngine::LuFt => {
                crate::revised::update_solve_cycle::<crate::ft::FtBasis>(a, updates, solves)
            }
            TraceEngine::LuBg => {
                crate::revised::update_solve_cycle::<crate::bg::BgBasis>(a, updates, solves)
            }
        }
    }
}

use presolve::StdRows;
use qava_linalg::EPS;
use std::cell::RefCell;

thread_local! {
    /// Per-thread default session backing the compatibility shims
    /// ([`solve_standard`], [`LpBuilder::solve`]). In-workspace synthesis
    /// threads explicit sessions instead; the default session keeps
    /// external callers and quick tests working with warm starts intact.
    static DEFAULT_SESSION: RefCell<LpSolver> = RefCell::new(LpSolver::new());
}

/// Runs `f` against this thread's default [`LpSolver`] session (the one
/// behind [`solve_standard`] and [`LpBuilder::solve`]).
pub fn with_default_solver<R>(f: impl FnOnce(&mut LpSolver) -> R) -> R {
    DEFAULT_SESSION.with(|s| f(&mut s.borrow_mut()))
}

/// Clears the default session's warm-start cache (benchmarks use this to
/// measure the cold path deterministically). Explicit sessions use
/// [`LpSolver::clear_warm_start_cache`].
pub fn clear_warm_start_cache() {
    with_default_solver(|s| s.clear_warm_start_cache());
}

/// Solves `min cᵀx, A·x = b, x ≥ 0` (with `b ≥ 0`) and returns the
/// optimal `x`.
///
/// Compatibility shim: delegates to this thread's default [`LpSolver`]
/// session (default backend policy, so the `dense-simplex` feature routes
/// it through the dense tableau). New code should hold an explicit
/// session and call [`LpSolver::solve_standard`].
///
/// # Errors
///
/// [`LpError::Infeasible`], [`LpError::Unbounded`], or
/// [`LpError::PivotLimit`].
pub fn solve_standard(
    costs: &[f64],
    a: &qava_linalg::Matrix,
    b: &[f64],
) -> Result<Vec<f64>, LpError> {
    with_default_solver(|s| s.solve_standard(costs, a, b))
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Minimize,
    Maximize,
}

/// A stored constraint row: `coeffs · x (cmp) rhs`.
#[derive(Debug, Clone)]
struct Row {
    coeffs: Vec<(usize, f64)>,
    cmp: Cmp,
    rhs: f64,
}

/// Errors returned by [`LpBuilder::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The constraint system has no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The pivot limit was exceeded (numerically pathological input).
    PivotLimit,
    /// The session's cooperative cancellation flag was raised
    /// ([`LpSolver::set_cancel_flag`]) before this solve started. The
    /// bound-engine racer uses this to wind down losing candidates at
    /// LP-solve boundaries; the solve performed no work.
    Cancelled,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::PivotLimit => write!(f, "simplex pivot limit exceeded"),
            LpError::Cancelled => write!(f, "solve cancelled (session cancellation flag raised)"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal solution of a linear program.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Optimal value of the objective, in the direction that was requested.
    pub objective: f64,
    values: Vec<f64>,
}

impl LpSolution {
    /// Value of variable `v` at the optimum.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.index()]
    }

    /// All variable values in declaration order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Evaluates a linear expression at the optimum.
    pub fn eval(&self, e: &LinExpr) -> f64 {
        e.eval(&self.values)
    }
}

/// Incremental linear-program builder; see the crate-level example.
#[derive(Debug, Clone)]
pub struct LpBuilder {
    names: Vec<String>,
    nonneg: Vec<bool>,
    rows: Vec<Row>,
    objective: Vec<(usize, f64)>,
    direction: Direction,
}

impl Default for LpBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl LpBuilder {
    /// Creates an empty model (minimization of 0 by default).
    pub fn new() -> Self {
        LpBuilder {
            names: Vec::new(),
            nonneg: Vec::new(),
            rows: Vec::new(),
            objective: Vec::new(),
            direction: Direction::Minimize,
        }
    }

    /// Adds a **free** (unbounded-sign) variable and returns its id.
    pub fn add_var(&mut self, name: impl Into<String>) -> VarId {
        self.names.push(name.into());
        self.nonneg.push(false);
        VarId::from_index(self.names.len() - 1)
    }

    /// Adds a variable constrained to be non-negative.
    ///
    /// Declaring non-negativity here instead of via [`constrain`](Self::constrain)
    /// avoids an extra row in the simplex tableau.
    pub fn add_var_nonneg(&mut self, name: impl Into<String>) -> VarId {
        self.names.push(name.into());
        self.nonneg.push(true);
        VarId::from_index(self.names.len() - 1)
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Name of a variable (used in `Debug` dumps of synthesized templates).
    pub fn var_name(&self, v: VarId) -> &str {
        &self.names[v.index()]
    }

    /// Adds the constraint `expr (cmp) rhs`. Any constant inside `expr` is
    /// folded onto the right-hand side.
    pub fn constrain(&mut self, expr: LinExpr, cmp: Cmp, rhs: f64) {
        let (coeffs, constant) = expr.into_parts();
        self.rows.push(Row { coeffs, cmp, rhs: rhs - constant });
    }

    /// Sets the objective to *minimize* `expr`. Constant terms are ignored
    /// for the pivoting itself; callers that care reconstruct exact values
    /// via [`LpSolution::eval`].
    pub fn minimize(&mut self, expr: LinExpr) {
        let (coeffs, _) = expr.into_parts();
        self.objective = coeffs;
        self.direction = Direction::Minimize;
    }

    /// Sets the objective to *maximize* `expr`.
    pub fn maximize(&mut self, expr: LinExpr) {
        let (coeffs, _) = expr.into_parts();
        self.objective = coeffs;
        self.direction = Direction::Maximize;
    }

    /// Runs the solver through this thread's **default session**.
    ///
    /// Compatibility shim for quick tests and external callers; synthesis
    /// code threads an explicit [`LpSolver`] and calls
    /// [`LpSolver::solve`] so warm starts and statistics stay with the
    /// run.
    ///
    /// # Errors
    ///
    /// * [`LpError::Infeasible`] — no point satisfies the constraints;
    /// * [`LpError::Unbounded`] — the objective improves without bound;
    /// * [`LpError::PivotLimit`] — the solver gave up (pathological input).
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        with_default_solver(|s| self.solve_in(s))
    }

    /// Runs the solver inside an explicit session (equivalently,
    /// [`LpSolver::solve`]).
    ///
    /// # Errors
    ///
    /// See [`solve`](Self::solve).
    pub fn solve_in(&self, solver: &mut LpSolver) -> Result<LpSolution, LpError> {
        let (std_rows, map) = self.lower();
        let x_std = solver.solve_std_rows(std_rows)?;
        let values = map.recover(&x_std);
        let objective: f64 = self.objective.iter().map(|&(j, c)| c * values[j]).sum();
        Ok(LpSolution { objective, values })
    }

    /// Lowers the model to sparse standard form
    /// `min cᵀy, A·y = b, y ≥ 0, b ≥ 0` without materializing a dense
    /// matrix: non-negative variables keep one column, free variables get
    /// a plus and a minus column, and each inequality gets a slack.
    fn lower(&self) -> (StdRows, ColMap) {
        let n = self.names.len();
        let mut col_of_plus = vec![0usize; n];
        let mut col_of_minus = vec![usize::MAX; n];
        let mut ncols = 0usize;
        for j in 0..n {
            col_of_plus[j] = ncols;
            ncols += 1;
            if !self.nonneg[j] {
                col_of_minus[j] = ncols;
                ncols += 1;
            }
        }
        let nslack = self.rows.iter().filter(|r| r.cmp != Cmp::Eq).count();
        let total = ncols + nslack;

        let m = self.rows.len();
        let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut b = vec![0.0; m];
        let mut slack_idx = ncols;
        let mut accum: Vec<f64> = vec![0.0; total];
        for (i, row) in self.rows.iter().enumerate() {
            let mut rhs = row.rhs;
            let mut sign = 1.0;
            // Normalize so the right-hand side is non-negative.
            if rhs < 0.0 {
                sign = -1.0;
                rhs = -rhs;
            }
            // Coalesce duplicate variables through a dense scratch vector
            // (columns touched per row are few; only touched slots are
            // visited and reset).
            let mut touched: Vec<usize> = Vec::with_capacity(row.coeffs.len() * 2);
            for &(j, c) in &row.coeffs {
                let c = c * sign;
                if accum[col_of_plus[j]] == 0.0 {
                    touched.push(col_of_plus[j]);
                }
                accum[col_of_plus[j]] += c;
                if col_of_minus[j] != usize::MAX {
                    if accum[col_of_minus[j]] == 0.0 {
                        touched.push(col_of_minus[j]);
                    }
                    accum[col_of_minus[j]] -= c;
                }
            }
            let mut sparse: Vec<(usize, f64)> = Vec::with_capacity(touched.len() + 1);
            touched.sort_unstable();
            touched.dedup();
            for &slot in &touched {
                if accum[slot] != 0.0 {
                    sparse.push((slot, accum[slot]));
                }
                accum[slot] = 0.0;
            }
            b[i] = rhs;
            let effective = match (row.cmp, sign < 0.0) {
                (Cmp::Eq, _) => Cmp::Eq,
                (Cmp::Le, false) | (Cmp::Ge, true) => Cmp::Le,
                (Cmp::Ge, false) | (Cmp::Le, true) => Cmp::Ge,
            };
            match effective {
                Cmp::Le => {
                    sparse.push((slack_idx, 1.0));
                    slack_idx += 1;
                }
                Cmp::Ge => {
                    sparse.push((slack_idx, -1.0));
                    slack_idx += 1;
                }
                Cmp::Eq => {}
            }
            rows.push(sparse);
        }

        let mut costs = vec![0.0; total];
        let obj_sign = match self.direction {
            Direction::Minimize => 1.0,
            Direction::Maximize => -1.0,
        };
        for &(j, c) in &self.objective {
            costs[col_of_plus[j]] += obj_sign * c;
            if col_of_minus[j] != usize::MAX {
                costs[col_of_minus[j]] -= obj_sign * c;
            }
        }

        (
            StdRows { costs, rows, b, ncols: total },
            ColMap { col_of_plus, col_of_minus, num_orig: n },
        )
    }
}

/// Column split bookkeeping of the standard-form lowering.
struct ColMap {
    col_of_plus: Vec<usize>,
    col_of_minus: Vec<usize>,
    num_orig: usize,
}

impl ColMap {
    /// Maps a standard-form solution vector back to original variables.
    fn recover(&self, x: &[f64]) -> Vec<f64> {
        (0..self.num_orig)
            .map(|j| {
                let plus = x[self.col_of_plus[j]];
                let minus = if self.col_of_minus[j] == usize::MAX {
                    0.0
                } else {
                    x[self.col_of_minus[j]]
                };
                let v = plus - minus;
                if v.abs() <= EPS {
                    0.0
                } else {
                    v
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le(lp: &mut LpBuilder, terms: &[(VarId, f64)], rhs: f64) {
        let mut e = LinExpr::new();
        for &(v, c) in terms {
            e = e.term(v, c);
        }
        lp.constrain(e, Cmp::Le, rhs);
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0 -> 36.
        let mut lp = LpBuilder::new();
        let x = lp.add_var_nonneg("x");
        let y = lp.add_var_nonneg("y");
        le(&mut lp, &[(x, 1.0)], 4.0);
        le(&mut lp, &[(y, 2.0)], 12.0);
        le(&mut lp, &[(x, 3.0), (y, 2.0)], 18.0);
        lp.maximize(LinExpr::new().term(x, 3.0).term(y, 5.0));
        let sol = lp.solve().unwrap();
        assert!((sol.objective - 36.0).abs() < 1e-7);
        assert!((sol.value(x) - 2.0).abs() < 1e-7);
        assert!((sol.value(y) - 6.0).abs() < 1e-7);
    }

    #[test]
    fn minimization_with_ge_rows() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 -> x=7, y=3, obj 23.
        let mut lp = LpBuilder::new();
        let x = lp.add_var_nonneg("x");
        let y = lp.add_var_nonneg("y");
        lp.constrain(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Ge, 10.0);
        lp.constrain(LinExpr::new().term(x, 1.0), Cmp::Ge, 2.0);
        lp.constrain(LinExpr::new().term(y, 1.0), Cmp::Ge, 3.0);
        lp.minimize(LinExpr::new().term(x, 2.0).term(y, 3.0));
        let sol = lp.solve().unwrap();
        assert!((sol.objective - 23.0).abs() < 1e-7, "got {}", sol.objective);
    }

    #[test]
    fn free_variables_go_negative() {
        // min x s.t. x >= -5 -> -5 with x free.
        let mut lp = LpBuilder::new();
        let x = lp.add_var("x");
        lp.constrain(LinExpr::new().term(x, 1.0), Cmp::Ge, -5.0);
        lp.minimize(LinExpr::new().term(x, 1.0));
        let sol = lp.solve().unwrap();
        assert!((sol.value(x) + 5.0).abs() < 1e-7);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x - y = 1 -> x=2, y=1.
        let mut lp = LpBuilder::new();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.constrain(LinExpr::new().term(x, 1.0).term(y, 2.0), Cmp::Eq, 4.0);
        lp.constrain(LinExpr::new().term(x, 1.0).term(y, -1.0), Cmp::Eq, 1.0);
        lp.minimize(LinExpr::new().term(x, 1.0).term(y, 1.0));
        let sol = lp.solve().unwrap();
        assert!((sol.value(x) - 2.0).abs() < 1e-7);
        assert!((sol.value(y) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LpBuilder::new();
        let x = lp.add_var_nonneg("x");
        lp.constrain(LinExpr::new().term(x, 1.0), Cmp::Le, 1.0);
        lp.constrain(LinExpr::new().term(x, 1.0), Cmp::Ge, 2.0);
        lp.minimize(LinExpr::new().term(x, 1.0));
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LpBuilder::new();
        let x = lp.add_var_nonneg("x");
        lp.maximize(LinExpr::new().term(x, 1.0));
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Several constraints meet at the optimal vertex.
        let mut lp = LpBuilder::new();
        let x = lp.add_var_nonneg("x");
        let y = lp.add_var_nonneg("y");
        le(&mut lp, &[(x, 1.0), (y, 1.0)], 1.0);
        le(&mut lp, &[(x, 1.0)], 1.0);
        le(&mut lp, &[(y, 1.0)], 1.0);
        le(&mut lp, &[(x, 2.0), (y, 2.0)], 2.0);
        lp.maximize(LinExpr::new().term(x, 1.0).term(y, 1.0));
        let sol = lp.solve().unwrap();
        assert!((sol.objective - 1.0).abs() < 1e-7);
    }

    #[test]
    fn constants_fold_into_rhs() {
        // x + 3 <= 5  ==  x <= 2.
        let mut lp = LpBuilder::new();
        let x = lp.add_var_nonneg("x");
        lp.constrain(LinExpr::new().term(x, 1.0).constant(3.0), Cmp::Le, 5.0);
        lp.maximize(LinExpr::new().term(x, 1.0));
        let sol = lp.solve().unwrap();
        assert!((sol.value(x) - 2.0).abs() < 1e-7);
    }

    #[test]
    fn zero_objective_feasibility_probe() {
        let mut lp = LpBuilder::new();
        let x = lp.add_var("x");
        lp.constrain(LinExpr::new().term(x, 1.0), Cmp::Eq, 7.0);
        let sol = lp.solve().unwrap();
        assert!((sol.value(x) - 7.0).abs() < 1e-7);
        assert_eq!(sol.objective, 0.0);
    }

    #[test]
    fn negative_rhs_rows_normalized() {
        // -x <= -3  ==  x >= 3.
        let mut lp = LpBuilder::new();
        let x = lp.add_var_nonneg("x");
        lp.constrain(LinExpr::new().term(x, -1.0), Cmp::Le, -3.0);
        lp.minimize(LinExpr::new().term(x, 1.0));
        let sol = lp.solve().unwrap();
        assert!((sol.value(x) - 3.0).abs() < 1e-7);
    }

    #[test]
    fn eval_on_solution() {
        let mut lp = LpBuilder::new();
        let x = lp.add_var("x");
        lp.constrain(LinExpr::new().term(x, 1.0), Cmp::Eq, 2.0);
        let sol = lp.solve().unwrap();
        let e = LinExpr::new().term(x, 10.0).constant(1.0);
        assert!((sol.eval(&e) - 21.0).abs() < 1e-9);
    }

    #[test]
    fn redundant_equalities_are_fine() {
        // x + y = 2 stated twice plus x - y = 0 -> x = y = 1.
        let mut lp = LpBuilder::new();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.constrain(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Eq, 2.0);
        lp.constrain(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Eq, 2.0);
        lp.constrain(LinExpr::new().term(x, 1.0).term(y, -1.0), Cmp::Eq, 0.0);
        lp.minimize(LinExpr::new().term(x, 1.0));
        let sol = lp.solve().unwrap();
        assert!((sol.value(x) - 1.0).abs() < 1e-7);
        assert!((sol.value(y) - 1.0).abs() < 1e-7);
    }
}
