#![warn(missing_docs)]

//! A self-contained linear-programming solver.
//!
//! Everything in `qava` that goes through Farkas' lemma — repulsing-ranking-
//! supermartingale synthesis (§5.1 of the paper), the Jensen-strengthened
//! lower-bound LP (§6), polyhedron emptiness and implication checks — ends in
//! a linear program. This crate provides:
//!
//! * [`LpBuilder`] — incremental model construction with named variables and
//!   sparse [`LinExpr`] linear expressions;
//! * a **sparse revised simplex** ([`solve`](LpBuilder::solve)): CSC column
//!   storage, presolve (empty/duplicate-row removal, fixed-variable
//!   elimination), max-norm equilibration, Dantzig pricing with a Bland
//!   anti-cycling fallback, and a warm-start basis cache keyed by LP
//!   sparsity pattern (see [`solve_standard`] for the entry point);
//!   µs-scale models below a small size cutover take the dense tableau,
//!   whose constant factor wins there (hybrid dispatch);
//! * the legacy **dense two-phase tableau** kept as a differential-testing
//!   oracle ([`solve_standard_dense`]); build with the `dense-simplex`
//!   feature to route [`solve_standard`] through it;
//! * exact infeasibility / unboundedness reporting via [`LpError`].
//!
//! The synthesis LPs routinely reach hundreds of rows and thousands of
//! columns at a few percent density; the revised method prices columns in
//! O(nnz) and keeps only the m×m basis inverse hot.
//!
//! # Examples
//!
//! ```
//! use qava_lp::{Cmp, LinExpr, LpBuilder};
//!
//! let mut lp = LpBuilder::new();
//! let x = lp.add_var("x");
//! let y = lp.add_var("y");
//! lp.constrain(LinExpr::new().term(x, 1.0).term(y, 2.0), Cmp::Le, 14.0);
//! lp.constrain(LinExpr::new().term(x, 3.0).term(y, -1.0), Cmp::Ge, 0.0);
//! lp.constrain(LinExpr::new().term(x, 1.0).term(y, -1.0), Cmp::Le, 2.0);
//! lp.maximize(LinExpr::new().term(x, 3.0).term(y, 4.0));
//! let sol = lp.solve()?;
//! assert!((sol.objective - 34.0).abs() < 1e-7);
//! # Ok::<(), qava_lp::LpError>(())
//! ```

mod csc;
mod expr;
mod presolve;
mod revised;
mod simplex;

pub use csc::CscMatrix;
pub use expr::{LinExpr, VarId};
pub use revised::clear_warm_start_cache;
pub use simplex::{solve_standard_dense, MAX_PIVOTS};

use presolve::StdRows;
use qava_linalg::EPS;

/// Row/column cutovers below which [`LpBuilder::solve`] prefers the
/// dense tableau; see the dispatch comment in `solve`.
const DENSE_CUTOVER_ROWS: usize = 16;
const DENSE_CUTOVER_COLS: usize = 96;

/// Solves `min cᵀx, A·x = b, x ≥ 0` (with `b ≥ 0`) and returns the
/// optimal `x`.
///
/// This is the stable entry point for standard-form systems: it routes to
/// the sparse revised simplex ([`crate`] docs) by default, or to the dense
/// tableau oracle when the crate is built with the `dense-simplex`
/// feature. Both paths perform the same max-norm equilibration.
///
/// # Errors
///
/// [`LpError::Infeasible`], [`LpError::Unbounded`], or
/// [`LpError::PivotLimit`].
pub fn solve_standard(
    costs: &[f64],
    a: &qava_linalg::Matrix,
    b: &[f64],
) -> Result<Vec<f64>, LpError> {
    if cfg!(feature = "dense-simplex") {
        return simplex::solve_standard_dense(costs, a, b);
    }
    let rows: Vec<Vec<(usize, f64)>> = (0..a.rows())
        .map(|i| {
            a.row(i)
                .iter()
                .enumerate()
                .filter(|(_, &v)| v != 0.0)
                .map(|(j, &v)| (j, v))
                .collect()
        })
        .collect();
    revised::solve_std_rows(StdRows {
        costs: costs.to_vec(),
        rows,
        b: b.to_vec(),
        ncols: a.cols(),
    })
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Minimize,
    Maximize,
}

/// A stored constraint row: `coeffs · x (cmp) rhs`.
#[derive(Debug, Clone)]
struct Row {
    coeffs: Vec<(usize, f64)>,
    cmp: Cmp,
    rhs: f64,
}

/// Errors returned by [`LpBuilder::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The constraint system has no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The pivot limit was exceeded (numerically pathological input).
    PivotLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::PivotLimit => write!(f, "simplex pivot limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal solution of a linear program.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Optimal value of the objective, in the direction that was requested.
    pub objective: f64,
    values: Vec<f64>,
}

impl LpSolution {
    /// Value of variable `v` at the optimum.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.index()]
    }

    /// All variable values in declaration order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Evaluates a linear expression at the optimum.
    pub fn eval(&self, e: &LinExpr) -> f64 {
        e.eval(&self.values)
    }
}

/// Incremental linear-program builder; see the crate-level example.
#[derive(Debug, Clone)]
pub struct LpBuilder {
    names: Vec<String>,
    nonneg: Vec<bool>,
    rows: Vec<Row>,
    objective: Vec<(usize, f64)>,
    direction: Direction,
}

impl Default for LpBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl LpBuilder {
    /// Creates an empty model (minimization of 0 by default).
    pub fn new() -> Self {
        LpBuilder {
            names: Vec::new(),
            nonneg: Vec::new(),
            rows: Vec::new(),
            objective: Vec::new(),
            direction: Direction::Minimize,
        }
    }

    /// Adds a **free** (unbounded-sign) variable and returns its id.
    pub fn add_var(&mut self, name: impl Into<String>) -> VarId {
        self.names.push(name.into());
        self.nonneg.push(false);
        VarId::from_index(self.names.len() - 1)
    }

    /// Adds a variable constrained to be non-negative.
    ///
    /// Declaring non-negativity here instead of via [`constrain`](Self::constrain)
    /// avoids an extra row in the simplex tableau.
    pub fn add_var_nonneg(&mut self, name: impl Into<String>) -> VarId {
        self.names.push(name.into());
        self.nonneg.push(true);
        VarId::from_index(self.names.len() - 1)
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Name of a variable (used in `Debug` dumps of synthesized templates).
    pub fn var_name(&self, v: VarId) -> &str {
        &self.names[v.index()]
    }

    /// Adds the constraint `expr (cmp) rhs`. Any constant inside `expr` is
    /// folded onto the right-hand side.
    pub fn constrain(&mut self, expr: LinExpr, cmp: Cmp, rhs: f64) {
        let (coeffs, constant) = expr.into_parts();
        self.rows.push(Row { coeffs, cmp, rhs: rhs - constant });
    }

    /// Sets the objective to *minimize* `expr`. Constant terms are ignored
    /// for the pivoting itself; callers that care reconstruct exact values
    /// via [`LpSolution::eval`].
    pub fn minimize(&mut self, expr: LinExpr) {
        let (coeffs, _) = expr.into_parts();
        self.objective = coeffs;
        self.direction = Direction::Minimize;
    }

    /// Sets the objective to *maximize* `expr`.
    pub fn maximize(&mut self, expr: LinExpr) {
        let (coeffs, _) = expr.into_parts();
        self.objective = coeffs;
        self.direction = Direction::Maximize;
    }

    /// Runs the simplex solver (sparse revised by default, the dense
    /// tableau oracle under the `dense-simplex` feature).
    ///
    /// # Errors
    ///
    /// * [`LpError::Infeasible`] — no point satisfies the constraints;
    /// * [`LpError::Unbounded`] — the objective improves without bound;
    /// * [`LpError::PivotLimit`] — the solver gave up (pathological input).
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        let (std_rows, map) = self.lower();
        // Hybrid dispatch: the sparse pipeline's fixed costs (pattern
        // hashing, CSC assembly, periodic refactorization) dominate on
        // the µs-scale models that polyhedron emptiness probes and small
        // lower-bound encodings produce, where the dense tableau's
        // constant factor wins. Large template LPs take the sparse
        // revised path, where pricing in O(nnz) and warm starts pay off.
        let tiny = std_rows.rows.len() <= DENSE_CUTOVER_ROWS
            && std_rows.ncols <= DENSE_CUTOVER_COLS;
        let x_std = if cfg!(feature = "dense-simplex") || tiny {
            let mut a = qava_linalg::Matrix::zeros(std_rows.rows.len(), std_rows.ncols);
            for (i, row) in std_rows.rows.iter().enumerate() {
                for &(j, v) in row {
                    a[(i, j)] += v;
                }
            }
            simplex::solve_standard_dense(&std_rows.costs, &a, &std_rows.b)?
        } else {
            revised::solve_std_rows(std_rows)?
        };
        let values = map.recover(&x_std);
        let objective: f64 = self.objective.iter().map(|&(j, c)| c * values[j]).sum();
        Ok(LpSolution { objective, values })
    }

    /// Lowers the model to sparse standard form
    /// `min cᵀy, A·y = b, y ≥ 0, b ≥ 0` without materializing a dense
    /// matrix: non-negative variables keep one column, free variables get
    /// a plus and a minus column, and each inequality gets a slack.
    fn lower(&self) -> (StdRows, ColMap) {
        let n = self.names.len();
        let mut col_of_plus = vec![0usize; n];
        let mut col_of_minus = vec![usize::MAX; n];
        let mut ncols = 0usize;
        for j in 0..n {
            col_of_plus[j] = ncols;
            ncols += 1;
            if !self.nonneg[j] {
                col_of_minus[j] = ncols;
                ncols += 1;
            }
        }
        let nslack = self.rows.iter().filter(|r| r.cmp != Cmp::Eq).count();
        let total = ncols + nslack;

        let m = self.rows.len();
        let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut b = vec![0.0; m];
        let mut slack_idx = ncols;
        let mut accum: Vec<f64> = vec![0.0; total];
        for (i, row) in self.rows.iter().enumerate() {
            let mut rhs = row.rhs;
            let mut sign = 1.0;
            // Normalize so the right-hand side is non-negative.
            if rhs < 0.0 {
                sign = -1.0;
                rhs = -rhs;
            }
            // Coalesce duplicate variables through a dense scratch vector
            // (columns touched per row are few; only touched slots are
            // visited and reset).
            let mut touched: Vec<usize> = Vec::with_capacity(row.coeffs.len() * 2);
            for &(j, c) in &row.coeffs {
                let c = c * sign;
                if accum[col_of_plus[j]] == 0.0 {
                    touched.push(col_of_plus[j]);
                }
                accum[col_of_plus[j]] += c;
                if col_of_minus[j] != usize::MAX {
                    if accum[col_of_minus[j]] == 0.0 {
                        touched.push(col_of_minus[j]);
                    }
                    accum[col_of_minus[j]] -= c;
                }
            }
            let mut sparse: Vec<(usize, f64)> = Vec::with_capacity(touched.len() + 1);
            touched.sort_unstable();
            touched.dedup();
            for &slot in &touched {
                if accum[slot] != 0.0 {
                    sparse.push((slot, accum[slot]));
                }
                accum[slot] = 0.0;
            }
            b[i] = rhs;
            let effective = match (row.cmp, sign < 0.0) {
                (Cmp::Eq, _) => Cmp::Eq,
                (Cmp::Le, false) | (Cmp::Ge, true) => Cmp::Le,
                (Cmp::Ge, false) | (Cmp::Le, true) => Cmp::Ge,
            };
            match effective {
                Cmp::Le => {
                    sparse.push((slack_idx, 1.0));
                    slack_idx += 1;
                }
                Cmp::Ge => {
                    sparse.push((slack_idx, -1.0));
                    slack_idx += 1;
                }
                Cmp::Eq => {}
            }
            rows.push(sparse);
        }

        let mut costs = vec![0.0; total];
        let obj_sign = match self.direction {
            Direction::Minimize => 1.0,
            Direction::Maximize => -1.0,
        };
        for &(j, c) in &self.objective {
            costs[col_of_plus[j]] += obj_sign * c;
            if col_of_minus[j] != usize::MAX {
                costs[col_of_minus[j]] -= obj_sign * c;
            }
        }

        (
            StdRows { costs, rows, b, ncols: total },
            ColMap { col_of_plus, col_of_minus, num_orig: n },
        )
    }
}

/// Column split bookkeeping of the standard-form lowering.
struct ColMap {
    col_of_plus: Vec<usize>,
    col_of_minus: Vec<usize>,
    num_orig: usize,
}

impl ColMap {
    /// Maps a standard-form solution vector back to original variables.
    fn recover(&self, x: &[f64]) -> Vec<f64> {
        (0..self.num_orig)
            .map(|j| {
                let plus = x[self.col_of_plus[j]];
                let minus = if self.col_of_minus[j] == usize::MAX {
                    0.0
                } else {
                    x[self.col_of_minus[j]]
                };
                let v = plus - minus;
                if v.abs() <= EPS {
                    0.0
                } else {
                    v
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le(lp: &mut LpBuilder, terms: &[(VarId, f64)], rhs: f64) {
        let mut e = LinExpr::new();
        for &(v, c) in terms {
            e = e.term(v, c);
        }
        lp.constrain(e, Cmp::Le, rhs);
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0 -> 36.
        let mut lp = LpBuilder::new();
        let x = lp.add_var_nonneg("x");
        let y = lp.add_var_nonneg("y");
        le(&mut lp, &[(x, 1.0)], 4.0);
        le(&mut lp, &[(y, 2.0)], 12.0);
        le(&mut lp, &[(x, 3.0), (y, 2.0)], 18.0);
        lp.maximize(LinExpr::new().term(x, 3.0).term(y, 5.0));
        let sol = lp.solve().unwrap();
        assert!((sol.objective - 36.0).abs() < 1e-7);
        assert!((sol.value(x) - 2.0).abs() < 1e-7);
        assert!((sol.value(y) - 6.0).abs() < 1e-7);
    }

    #[test]
    fn minimization_with_ge_rows() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 -> x=7, y=3, obj 23.
        let mut lp = LpBuilder::new();
        let x = lp.add_var_nonneg("x");
        let y = lp.add_var_nonneg("y");
        lp.constrain(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Ge, 10.0);
        lp.constrain(LinExpr::new().term(x, 1.0), Cmp::Ge, 2.0);
        lp.constrain(LinExpr::new().term(y, 1.0), Cmp::Ge, 3.0);
        lp.minimize(LinExpr::new().term(x, 2.0).term(y, 3.0));
        let sol = lp.solve().unwrap();
        assert!((sol.objective - 23.0).abs() < 1e-7, "got {}", sol.objective);
    }

    #[test]
    fn free_variables_go_negative() {
        // min x s.t. x >= -5 -> -5 with x free.
        let mut lp = LpBuilder::new();
        let x = lp.add_var("x");
        lp.constrain(LinExpr::new().term(x, 1.0), Cmp::Ge, -5.0);
        lp.minimize(LinExpr::new().term(x, 1.0));
        let sol = lp.solve().unwrap();
        assert!((sol.value(x) + 5.0).abs() < 1e-7);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x - y = 1 -> x=2, y=1.
        let mut lp = LpBuilder::new();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.constrain(LinExpr::new().term(x, 1.0).term(y, 2.0), Cmp::Eq, 4.0);
        lp.constrain(LinExpr::new().term(x, 1.0).term(y, -1.0), Cmp::Eq, 1.0);
        lp.minimize(LinExpr::new().term(x, 1.0).term(y, 1.0));
        let sol = lp.solve().unwrap();
        assert!((sol.value(x) - 2.0).abs() < 1e-7);
        assert!((sol.value(y) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LpBuilder::new();
        let x = lp.add_var_nonneg("x");
        lp.constrain(LinExpr::new().term(x, 1.0), Cmp::Le, 1.0);
        lp.constrain(LinExpr::new().term(x, 1.0), Cmp::Ge, 2.0);
        lp.minimize(LinExpr::new().term(x, 1.0));
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LpBuilder::new();
        let x = lp.add_var_nonneg("x");
        lp.maximize(LinExpr::new().term(x, 1.0));
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Several constraints meet at the optimal vertex.
        let mut lp = LpBuilder::new();
        let x = lp.add_var_nonneg("x");
        let y = lp.add_var_nonneg("y");
        le(&mut lp, &[(x, 1.0), (y, 1.0)], 1.0);
        le(&mut lp, &[(x, 1.0)], 1.0);
        le(&mut lp, &[(y, 1.0)], 1.0);
        le(&mut lp, &[(x, 2.0), (y, 2.0)], 2.0);
        lp.maximize(LinExpr::new().term(x, 1.0).term(y, 1.0));
        let sol = lp.solve().unwrap();
        assert!((sol.objective - 1.0).abs() < 1e-7);
    }

    #[test]
    fn constants_fold_into_rhs() {
        // x + 3 <= 5  ==  x <= 2.
        let mut lp = LpBuilder::new();
        let x = lp.add_var_nonneg("x");
        lp.constrain(LinExpr::new().term(x, 1.0).constant(3.0), Cmp::Le, 5.0);
        lp.maximize(LinExpr::new().term(x, 1.0));
        let sol = lp.solve().unwrap();
        assert!((sol.value(x) - 2.0).abs() < 1e-7);
    }

    #[test]
    fn zero_objective_feasibility_probe() {
        let mut lp = LpBuilder::new();
        let x = lp.add_var("x");
        lp.constrain(LinExpr::new().term(x, 1.0), Cmp::Eq, 7.0);
        let sol = lp.solve().unwrap();
        assert!((sol.value(x) - 7.0).abs() < 1e-7);
        assert_eq!(sol.objective, 0.0);
    }

    #[test]
    fn negative_rhs_rows_normalized() {
        // -x <= -3  ==  x >= 3.
        let mut lp = LpBuilder::new();
        let x = lp.add_var_nonneg("x");
        lp.constrain(LinExpr::new().term(x, -1.0), Cmp::Le, -3.0);
        lp.minimize(LinExpr::new().term(x, 1.0));
        let sol = lp.solve().unwrap();
        assert!((sol.value(x) - 3.0).abs() < 1e-7);
    }

    #[test]
    fn eval_on_solution() {
        let mut lp = LpBuilder::new();
        let x = lp.add_var("x");
        lp.constrain(LinExpr::new().term(x, 1.0), Cmp::Eq, 2.0);
        let sol = lp.solve().unwrap();
        let e = LinExpr::new().term(x, 10.0).constant(1.0);
        assert!((sol.eval(&e) - 21.0).abs() < 1e-9);
    }

    #[test]
    fn redundant_equalities_are_fine() {
        // x + y = 2 stated twice plus x - y = 0 -> x = y = 1.
        let mut lp = LpBuilder::new();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.constrain(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Eq, 2.0);
        lp.constrain(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Eq, 2.0);
        lp.constrain(LinExpr::new().term(x, 1.0).term(y, -1.0), Cmp::Eq, 0.0);
        lp.minimize(LinExpr::new().term(x, 1.0));
        let sol = lp.solve().unwrap();
        assert!((sol.value(x) - 1.0).abs() < 1e-7);
        assert!((sol.value(y) - 1.0).abs() < 1e-7);
    }
}
