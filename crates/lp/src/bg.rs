//! Bartels–Golub basis updates: the `lu-bg` backend's representation.
//!
//! Like Forrest–Tomlin (see [`crate::ft`]), a basis exchange replaces
//! one column of the row-keyed U factor with the spike `w = E·L⁻¹·a`
//! and chases the disturbed row back to triangular form, recording the
//! row operations for later solves. The difference is *where the pivot
//! comes from*. FT has no choice: the leaving diagonal's row rotates to
//! the end and every elimination step divides by whatever diagonal the
//! window offers — a tiny diagonal produces a huge multiplier that
//! amplifies rounding error into the stored eta and every solve after
//! it (the drift its accuracy check exists to catch). Bartels–Golub
//! instead compares, at each window column, the diagonal against the
//! chased row's entry and pivots on the **larger** of the two:
//!
//! * `|diag| ≥ |entry|` — eliminate as FT would, multiplier
//!   `entry/diag`, now guaranteed `≤ 1` in magnitude;
//! * `|entry| > |diag|` — **interchange** the chased row with the
//!   diagonal's row first: the big entry becomes the new diagonal, the
//!   old diagonal drops into the chased row and is eliminated with
//!   multiplier `diag/entry`, again `≤ 1`.
//!
//! Every multiplier is bounded by one, so the elimination is backward
//! stable regardless of how knife-edged the basis is. The price is
//! fill: an interchange moves the chased row's partial results into U
//! as a stored row, where FT would have kept them transient. The
//! interchange is recorded as an explicit [`Op::Swap`] in the operator
//! stream (a row permutation is its own transpose, so btran replays it
//! unchanged), and the eliminations between swaps batch into the same
//! masked [`RowEta`] runs the FT engine stores.
//!
//! Everything else — the frozen L solves, the spike cache, the
//! row-keyed storage convention that keeps stored operations valid
//! across reorderings, and the refactorization triggers — is shared
//! with the FT engine, so the two backends differ *only* in the update
//! elimination and are directly comparable in the stability telemetry
//! ([`BasisRepr::stability`]): interchange count, peak chased-row
//! growth, and accuracy-triggered refactorizations.

use crate::ft::{
    mask_assign, mask_get, mask_set, mask_words, masks_intersect, RowEta, SpikeCache,
    ACCURACY_DRIFT, FILL_FACTOR, MAX_UPDATES, SHAKY_PIVOT,
};
use crate::lu::{LuFactors, SparseCol};
use crate::revised::{BasisRepr, UpdateStability};
use crate::CscMatrix;
use qava_linalg::vecops;
use std::cell::RefCell;

/// One recorded operation of the update stream. Applied oldest-first in
/// forward solves; newest-first, transposed, in backward solves — a row
/// eta transposes into a scatter, a row swap into itself.
#[derive(Debug, Clone)]
enum Op {
    /// A run of chased-row eliminations between interchanges; same
    /// algebra and mask-skipping as the FT row eta.
    Row(RowEta),
    /// A physical row interchange performed mid-elimination.
    Swap(usize, usize),
}

/// Closes the current elimination run into a stored [`Op::Row`].
fn flush_run(
    m: usize,
    rt: usize,
    run: &mut Vec<(usize, f64)>,
    ops: &mut Vec<Op>,
    eta_nnz: &mut usize,
) {
    if run.is_empty() {
        return;
    }
    *eta_nnz += run.len();
    let mut mask = vec![0u64; mask_words(m)];
    for &(c, _) in run.iter() {
        mask_set(&mut mask, c);
    }
    let entries = std::mem::take(run);
    ops.push(Op::Row(RowEta { row: rt, col: SparseCol::from_entries(entries), mask }));
}

/// The Bartels–Golub basis representation behind the `lu-bg` backend
/// ([`crate::LuBgSimplex`]): frozen L factors plus a mutable, row-keyed
/// U updated by partially pivoted spike elimination.
#[derive(Debug, Clone)]
pub(crate) struct BgBasis {
    m: usize,
    /// Factors of the last refactorization; only the L half (plus its
    /// row permutation) is used after [`install`](Self::install).
    lu: LuFactors,
    /// Position → row key of the diagonal at that position.
    order: Vec<usize>,
    /// Row key → current position (inverse of `order`).
    pos_of: Vec<usize>,
    /// Row key → basis slot of the column whose diagonal lives on that
    /// row (stable across updates, exactly as in the FT engine — an
    /// interchange swaps row *contents*, never the chased row's key).
    slot_of: Vec<usize>,
    /// Basis slot → row key (inverse of `slot_of`).
    key_of_slot: Vec<usize>,
    /// Row key → above-diagonal entries of that diagonal's U column,
    /// row-keyed; triangular in positions.
    u_cols: Vec<SparseCol>,
    /// Row key → diagonal value.
    u_diag: Vec<f64>,
    /// Stored U nonzeros, diagonals included.
    u_nnz: usize,
    /// `nnz(L) + nnz(U)` right after the last refactorization.
    base_nnz: usize,
    /// Update operations since the last refactorization, oldest first.
    ops: Vec<Op>,
    /// Stored eta entries plus one per swap (an interchange costs two
    /// index slots; charging it keeps the fill trigger honest).
    eta_nnz: usize,
    updates: usize,
    /// A pivot below [`SHAKY_PIVOT`] was accepted; refactorize at the
    /// next opportunity.
    shaky: bool,
    /// Row-keyed spike workspace; all-zero between updates.
    spike: Vec<f64>,
    /// Row-keyed chased-row workspace (the spike row under elimination,
    /// maintained eagerly so each step can compare it against the
    /// diagonal); all-zero between updates.
    brow: Vec<f64>,
    /// Row key → number of stored off-diagonal U entries on that row.
    row_nnz: Vec<usize>,
    /// See [`SpikeCache`] — shared verbatim with the FT engine.
    spike_cache: RefCell<SpikeCache>,
    /// Reusable nonzero-row mask for [`apply_ops_forward`]
    /// (`RefCell`: the solve paths take `&self`).
    live_mask: RefCell<Vec<u64>>,
    /// Cumulative stability accounting (never reset by `install`; see
    /// [`BasisRepr::stability`]): row interchanges performed.
    interchanges: usize,
    /// Max over updates of (peak chased-row magnitude during
    /// elimination) / (its magnitude on entry) — the spike-pivot growth
    /// factor partial pivoting is bounding.
    max_growth: f64,
    /// Updates whose determinant-identity cross-check disagreed with
    /// the eliminated diagonal.
    acc_refactors: usize,
}

impl BgBasis {
    /// Adopts a fresh factorization: copies U into the mutable
    /// row-keyed form, resets permutations, stored ops and counters.
    /// The cumulative stability counters survive — they describe the
    /// engine's whole life, which is exactly one solver run.
    fn install(&mut self, lu: LuFactors) {
        let m = self.m;
        self.order.clear();
        self.order.extend_from_slice(&lu.pos_row);
        self.base_nnz = lu.nnz();
        self.u_nnz = m;
        for k in 0..m {
            let r = lu.pos_row[k];
            self.pos_of[r] = k;
            self.slot_of[r] = lu.col_order[k];
            self.key_of_slot[lu.col_order[k]] = r;
            self.u_diag[r] = lu.diag[k];
            let uc = &lu.u_cols[k];
            let entries: Vec<(usize, f64)> =
                uc.idx.iter().zip(&uc.vals).map(|(&t, &v)| (lu.pos_row[t], v)).collect();
            self.u_nnz += entries.len();
            self.u_cols[r] = SparseCol::from_entries(entries);
        }
        self.row_nnz.iter_mut().for_each(|v| *v = 0);
        for col in &self.u_cols {
            for &rk in &col.idx {
                self.row_nnz[rk] += 1;
            }
        }
        self.lu = lu;
        self.ops.clear();
        self.eta_nnz = 0;
        self.updates = 0;
        self.shaky = false;
        self.spike_cache.borrow_mut().valid = false;
    }

    /// Applies the stored update ops, oldest first, to a vector already
    /// carried through the frozen L part. Eta runs keep the FT engine's
    /// mask-intersection skipping; a swap whose two rows are both
    /// outside the live mask moves two provable zeros and is skipped,
    /// otherwise the rows and their mask bits swap together so the mask
    /// stays a superset of the true nonzero set.
    fn apply_ops_forward(&self, x: &mut [f64]) {
        if self.ops.is_empty() {
            return;
        }
        let mut live = self.live_mask.borrow_mut();
        live.clear();
        live.resize(mask_words(self.m), 0);
        for (r, &v) in x.iter().enumerate() {
            if v != 0.0 {
                mask_set(&mut live, r);
            }
        }
        for op in &self.ops {
            match op {
                Op::Row(eta) => {
                    if !masks_intersect(&eta.mask, &live) {
                        continue;
                    }
                    let s = vecops::gather_dot(&eta.col.idx, &eta.col.vals, x);
                    if s != 0.0 {
                        x[eta.row] -= s;
                        mask_set(&mut live, eta.row);
                    }
                }
                Op::Swap(a, b) => {
                    let ba = mask_get(&live, *a);
                    let bb = mask_get(&live, *b);
                    if ba || bb {
                        x.swap(*a, *b);
                        mask_assign(&mut live, *a, bb);
                        mask_assign(&mut live, *b, ba);
                    }
                }
            }
        }
    }

    /// Applies the transposed ops, newest first (the backward-solve
    /// half): etas scatter, swaps are their own transpose.
    fn apply_ops_transposed(&self, w: &mut [f64]) {
        for op in self.ops.iter().rev() {
            match op {
                Op::Row(eta) => {
                    let t = w[eta.row];
                    if t != 0.0 {
                        vecops::scatter_axpy(-t, &eta.col.idx, &eta.col.vals, w);
                    }
                }
                Op::Swap(a, b) => w.swap(*a, *b),
            }
        }
    }

    /// Solves `B·z = b` (dense `b`, row indexing in, basis-slot
    /// indexing out), optionally stashing the post-L/post-ops spike for
    /// the update that typically follows — same shape as the FT
    /// engine's `solve_forward`.
    fn solve_forward(&self, mut x: Vec<f64>, cache_as: Option<(&[usize], &[f64])>) -> Vec<f64> {
        self.lu.l_solve(&mut x);
        self.apply_ops_forward(&mut x);
        if let Some((idx, vals)) = cache_as {
            let mut cache = self.spike_cache.borrow_mut();
            cache.col_idx.clear();
            cache.col_idx.extend_from_slice(idx);
            cache.col_vals.clear();
            cache.col_vals.extend_from_slice(vals);
            cache.spike.clear();
            cache.spike.extend_from_slice(&x);
            cache.valid = true;
        }
        let mut out = vec![0.0; self.m];
        for p in (0..self.m).rev() {
            let r = self.order[p];
            let w = x[r] / self.u_diag[r];
            if w != 0.0 {
                let uc = &self.u_cols[r];
                vecops::scatter_axpy(-w, &uc.idx, &uc.vals, &mut x);
                out[self.slot_of[r]] = w;
            }
        }
        out
    }
}

impl BasisRepr for BgBasis {
    fn identity(m: usize) -> Self {
        let mut repr = BgBasis {
            m,
            lu: LuFactors::identity(m),
            order: Vec::with_capacity(m),
            pos_of: vec![0; m],
            slot_of: vec![0; m],
            key_of_slot: vec![0; m],
            u_cols: vec![SparseCol::default(); m],
            u_diag: vec![1.0; m],
            u_nnz: m,
            base_nnz: m,
            ops: Vec::new(),
            eta_nnz: 0,
            updates: 0,
            shaky: false,
            spike: vec![0.0; m],
            brow: vec![0.0; m],
            row_nnz: vec![0; m],
            spike_cache: RefCell::new(SpikeCache::default()),
            live_mask: RefCell::new(Vec::new()),
            interchanges: 0,
            max_growth: 0.0,
            acc_refactors: 0,
        };
        repr.install(LuFactors::identity(m));
        repr
    }

    fn refactor(&mut self, a: &CscMatrix, n: usize, basis: &[usize]) -> bool {
        let cols: Vec<(Vec<usize>, Vec<f64>)> =
            basis.iter().map(|&j| crate::revised::basis_col(a, n, j)).collect();
        match LuFactors::factorize(self.m, &cols) {
            Some(lu) => {
                self.install(lu);
                true
            }
            None => false,
        }
    }

    fn ftran_col(&self, idx: &[usize], vals: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.m];
        for (&r, &v) in idx.iter().zip(vals) {
            x[r] = v;
        }
        self.solve_forward(x, Some((idx, vals)))
    }

    fn ftran_dense(&self, rhs: &[f64]) -> Vec<f64> {
        self.solve_forward(rhs.to_vec(), None)
    }

    fn btran_dense(&self, cb: &[f64]) -> Vec<f64> {
        let mut w = vec![0.0; self.m];
        for p in 0..self.m {
            let r = self.order[p];
            let uc = &self.u_cols[r];
            let s = cb[self.slot_of[r]] - vecops::gather_dot(&uc.idx, &uc.vals, &w);
            w[r] = s / self.u_diag[r];
        }
        self.apply_ops_transposed(&mut w);
        self.lu.lt_solve(&mut w);
        w
    }

    fn binv_row(&self, i: usize) -> Vec<f64> {
        // Unit-vector btran with the same entry-position shortcut as
        // the FT engine: every Uᵀ position before slot `i`'s diagonal
        // gathers only zeros.
        let mut w = vec![0.0; self.m];
        let start = self.pos_of[self.key_of_slot[i]];
        for p in start..self.m {
            let r = self.order[p];
            let uc = &self.u_cols[r];
            let rhs = if p == start { 1.0 } else { 0.0 };
            let s = rhs - vecops::gather_dot(&uc.idx, &uc.vals, &w);
            w[r] = s / self.u_diag[r];
        }
        self.apply_ops_transposed(&mut w);
        self.lu.lt_solve(&mut w);
        w
    }

    /// The Bartels–Golub exchange: slot `row`'s variable leaves, the
    /// column `col_idx`/`col_vals` with ftran'd direction `u` enters.
    fn update(
        &mut self,
        row: usize,
        u: &[f64],
        _support: &[usize],
        col_idx: &[usize],
        col_vals: &[f64],
    ) {
        let m = self.m;
        let rt = self.key_of_slot[row];
        let t = self.pos_of[rt];
        // Determinant identity, generalized for interchanges: FT's
        // prediction d = u[row]·U_tt gains a factor −diag/entry per
        // swap (the swap flips the determinant's sign and moves the big
        // entry onto the diagonal). Maintained as a running product so
        // the final cross-check below measures accumulated elimination
        // error exactly as in the FT engine.
        let mut predicted = u[row] * self.u_diag[rt];
        if u[row].abs() < SHAKY_PIVOT || crate::faults::trip(crate::faults::Site::UpdatePivot) {
            self.shaky = true;
        }

        // ---- 1. Obtain the spike w = Ops·L⁻¹·a, almost always from
        // the cache stashed by the ftran that chose this column.
        debug_assert!(self.spike.iter().all(|&v| v == 0.0));
        {
            let mut cache = self.spike_cache.borrow_mut();
            if cache.matches(col_idx, col_vals) {
                std::mem::swap(&mut self.spike, &mut cache.spike);
            } else {
                drop(cache);
                let mut spike = std::mem::take(&mut self.spike);
                for (&r, &v) in col_idx.iter().zip(col_vals) {
                    spike[r] = v;
                }
                self.lu.l_solve(&mut spike);
                self.apply_ops_forward(&mut spike);
                self.spike = spike;
            }
        }
        self.spike_cache.borrow_mut().valid = false;

        // ---- 2. Delete the leaving column (the spike replaces it).
        let old_col = std::mem::take(&mut self.u_cols[rt]);
        self.u_nnz -= old_col.nnz() + 1;
        for &rk in &old_col.idx {
            self.row_nnz[rk] -= 1;
        }

        // ---- 3. Pull the chased row out of storage into the `brow`
        // workspace (all its entries sit in window columns, by
        // triangularity; the row-occupancy count ends the scan early).
        // Unlike FT's lazy elimination, the row is maintained eagerly —
        // each step below needs its current value to pick a pivot.
        let mut live = 0usize;
        let mut to_find = self.row_nnz[rt];
        for p in t + 1..m {
            if to_find == 0 {
                break;
            }
            let c = self.order[p];
            let col = &mut self.u_cols[c];
            if let Ok(k) = col.idx.binary_search(&rt) {
                self.brow[c] = col.vals[k];
                live += 1;
                col.idx.remove(k);
                col.vals.remove(k);
                self.u_nnz -= 1;
                to_find -= 1;
            }
        }
        self.row_nnz[rt] = 0;

        // The chased row's spike-column entry rides along as a scalar;
        // growth is measured against the row's magnitude on entry.
        let mut wbot = self.spike[rt];
        self.spike[rt] = 0.0;
        let mut init_peak = wbot.abs();
        for p in t + 1..m {
            init_peak = init_peak.max(self.brow[self.order[p]].abs());
        }
        let mut peak = init_peak;

        // ---- 4. Partially pivoted elimination over the window. At
        // each column the chased row either eliminates against the
        // diagonal (multiplier ≤ 1) or, when its entry is the larger,
        // interchanges with the diagonal's row first — the entry
        // becomes the diagonal, the old diagonal drops into the chased
        // row and eliminates with a multiplier again ≤ 1. Ends early
        // once the chased row is exhausted (then no later op can touch
        // it or the spike scalar).
        let mut run: Vec<(usize, f64)> = Vec::new();
        for p in t + 1..m {
            if live == 0 {
                break;
            }
            let c = self.order[p];
            let val = self.brow[c];
            if val == 0.0 {
                continue;
            }
            self.brow[c] = 0.0;
            live -= 1;
            peak = peak.max(val.abs());
            let diag = self.u_diag[c];
            if val.abs() > diag.abs() {
                // ---- Interchange: swap physical rows rt and c. Stored
                // row-c entries (all in later columns) become chased-row
                // values and vice versa; the swap then eliminates with
                // r = diag/val. A replace/remove/insert in one fused
                // scan keeps every column sorted and the bookkeeping
                // exact.
                let r = diag / val;
                predicted *= -r;
                let mut find_old = self.row_nnz[c];
                for q in p + 1..m {
                    let c2 = self.order[q];
                    let mut g = 0.0;
                    let bold = self.brow[c2];
                    let col = &mut self.u_cols[c2];
                    if find_old > 0 {
                        if let Ok(k) = col.idx.binary_search(&c) {
                            g = col.vals[k];
                            find_old -= 1;
                            if bold != 0.0 {
                                col.vals[k] = bold;
                            } else {
                                col.idx.remove(k);
                                col.vals.remove(k);
                                self.u_nnz -= 1;
                                self.row_nnz[c] -= 1;
                            }
                        } else if bold != 0.0 {
                            let k = col.idx.binary_search(&c).unwrap_err();
                            col.idx.insert(k, c);
                            col.vals.insert(k, bold);
                            self.u_nnz += 1;
                            self.row_nnz[c] += 1;
                        }
                    } else if bold != 0.0 {
                        let k = col.idx.binary_search(&c).unwrap_err();
                        col.idx.insert(k, c);
                        col.vals.insert(k, bold);
                        self.u_nnz += 1;
                        self.row_nnz[c] += 1;
                    }
                    if g == 0.0 && bold == 0.0 {
                        continue;
                    }
                    if bold != 0.0 {
                        live -= 1;
                    }
                    let newb = g - r * bold;
                    if newb != 0.0 {
                        live += 1;
                        peak = peak.max(newb.abs());
                    }
                    self.brow[c2] = newb;
                }
                // The spike's rows swap with everything else; the old
                // diagonal lands in the chased row and eliminates to
                // exact zero, leaving `val` as column c's new diagonal.
                let w_c = self.spike[c];
                self.spike[c] = wbot;
                wbot = w_c - r * wbot;
                self.u_diag[c] = val;
                self.interchanges += 1;
                flush_run(m, rt, &mut run, &mut self.ops, &mut self.eta_nnz);
                self.ops.push(Op::Swap(rt, c));
                self.eta_nnz += 1;
                if r != 0.0 {
                    run.push((c, r));
                }
            } else {
                // ---- FT-style step, multiplier now guaranteed ≤ 1.
                let r = val / diag;
                let mut find = self.row_nnz[c];
                for q in p + 1..m {
                    if find == 0 {
                        break;
                    }
                    let c2 = self.order[q];
                    let col = &self.u_cols[c2];
                    if let Ok(k) = col.idx.binary_search(&c) {
                        find -= 1;
                        let old = self.brow[c2];
                        let newb = old - r * col.vals[k];
                        if old != 0.0 && newb == 0.0 {
                            live -= 1;
                        }
                        if old == 0.0 && newb != 0.0 {
                            live += 1;
                        }
                        if newb != 0.0 {
                            peak = peak.max(newb.abs());
                        }
                        self.brow[c2] = newb;
                    }
                }
                wbot -= r * self.spike[c];
                run.push((c, r));
            }
            peak = peak.max(wbot.abs());
        }
        flush_run(m, rt, &mut run, &mut self.ops, &mut self.eta_nnz);

        // ---- 5. New diagonal and the accuracy cross-check, exactly as
        // in the FT engine but against the swap-adjusted prediction.
        let mut d = wbot;
        peak = peak.max(d.abs());
        if init_peak > 0.0 {
            self.max_growth = self.max_growth.max(peak / init_peak);
        }
        let tiny = d.abs() < SHAKY_PIVOT;
        let drifted = (d - predicted).abs() > ACCURACY_DRIFT * (d.abs() + predicted.abs())
            || crate::faults::trip(crate::faults::Site::BgAccuracy);
        if drifted {
            self.acc_refactors += 1;
        }
        if tiny || drifted {
            self.shaky = true;
            if std::env::var_os("QAVA_LP_DEBUG_WATCHDOG").is_some() {
                eprintln!(
                    "bg shaky after update {}: d = {d:e} vs predicted {predicted:e} \
                     (tiny = {tiny}, drifted = {drifted})",
                    self.updates
                );
            }
        }
        if d == 0.0 {
            d = SHAKY_PIVOT * SHAKY_PIVOT;
        }

        // ---- 6. Install the spike (its rows already carry every
        // interchange) as the new column of `rt`'s diagonal, resetting
        // the workspace as it is read out.
        let mut new_entries: Vec<(usize, f64)> = Vec::new();
        for c in 0..m {
            let v = self.spike[c];
            if v != 0.0 {
                self.spike[c] = 0.0;
                if c != rt {
                    self.row_nnz[c] += 1;
                    new_entries.push((c, v));
                }
            }
        }
        self.u_nnz += new_entries.len() + 1;
        self.u_cols[rt] = SparseCol::from_entries(new_entries);
        self.u_diag[rt] = d;

        // ---- 7. Rotate the permutation: `rt` cycles from position t
        // to the end (its key never changed — interchanges swapped row
        // contents, not keys), everything in between shifts up one.
        self.order[t..].rotate_left(1);
        debug_assert_eq!(self.order[m - 1], rt);
        for p in t..m {
            self.pos_of[self.order[p]] = p;
        }
        self.updates += 1;
    }

    fn should_refactor(&self, _iteration: usize) -> bool {
        self.shaky
            || self.updates >= MAX_UPDATES
            || self.u_nnz + self.eta_nnz > FILL_FACTOR * self.base_nnz + self.m
    }

    /// Same contract as the other LU engines: optimality claimed
    /// through incrementally updated factors is re-derived from a fresh
    /// refactorization before being reported.
    fn trusts_incremental_optimal(&self) -> bool {
        false
    }

    fn stability(&self) -> UpdateStability {
        UpdateStability {
            accuracy_refactors: self.acc_refactors,
            interchanges: self.interchanges,
            max_growth: self.max_growth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ft::FtBasis;
    use qava_linalg::Matrix;

    fn basis_csc(dense: Vec<Vec<f64>>) -> CscMatrix {
        CscMatrix::from_dense(&Matrix::from_rows(dense))
    }

    /// Reference B⁻¹ for a basis assembled the same way `refactor` does.
    fn dense_inverse(a: &CscMatrix, n: usize, basis: &[usize]) -> Matrix {
        let m = a.rows();
        let mut bm = Matrix::zeros(m, m);
        for (k, &j) in basis.iter().enumerate() {
            if j < n {
                let (idx, vals) = a.col(j);
                for (&r, &v) in idx.iter().zip(vals) {
                    bm[(r, k)] = v;
                }
            } else {
                bm[(j - n, k)] = 1.0;
            }
        }
        bm.inverse().expect("test basis nonsingular")
    }

    /// Every solve of `repr` must match the dense inverse of the basis.
    fn assert_matches_inverse(repr: &BgBasis, inv: &Matrix, tol: f64, ctx: &str) {
        let m = inv.rows();
        for t in 0..=m {
            let b: Vec<f64> = if t < m {
                (0..m).map(|i| if i == t { 1.0 } else { 0.0 }).collect()
            } else {
                (0..m).map(|i| (i as f64) * 0.7 - 1.3).collect()
            };
            let x = repr.ftran_dense(&b);
            let want = inv.mul_vec(&b);
            for (i, (&g, &w)) in x.iter().zip(&want).enumerate() {
                assert!((g - w).abs() < tol, "{ctx}: ftran[{i}] {g} vs {w}");
            }
            let y = repr.btran_dense(&b);
            let want_y = inv.mul_vec_transposed(&b);
            for (i, (&g, &w)) in y.iter().zip(&want_y).enumerate() {
                assert!((g - w).abs() < tol, "{ctx}: btran[{i}] {g} vs {w}");
            }
        }
    }

    /// Structural invariants of the row-keyed representation.
    fn check_invariants(repr: &BgBasis) {
        let m = repr.m;
        let mut seen = vec![false; m];
        for p in 0..m {
            let r = repr.order[p];
            assert!(!seen[r], "row key {r} appears twice in the order");
            seen[r] = true;
            assert_eq!(repr.pos_of[r], p, "pos_of out of sync at {r}");
            assert_eq!(repr.key_of_slot[repr.slot_of[r]], r, "slot maps out of sync");
        }
        let mut nnz = 0;
        for r in 0..m {
            nnz += repr.u_cols[r].nnz() + 1;
            for &rk in &repr.u_cols[r].idx {
                assert!(
                    repr.pos_of[rk] < repr.pos_of[r],
                    "triangularity violated: entry {rk} (pos {}) in column {r} (pos {})",
                    repr.pos_of[rk],
                    repr.pos_of[r]
                );
            }
        }
        assert_eq!(nnz, repr.u_nnz, "u_nnz bookkeeping drifted");
        let mut row_counts = vec![0usize; m];
        for r in 0..m {
            for &rk in &repr.u_cols[r].idx {
                row_counts[rk] += 1;
            }
        }
        assert_eq!(row_counts, repr.row_nnz, "row_nnz bookkeeping drifted");
        assert!(repr.spike.iter().all(|&v| v == 0.0), "spike workspace not reset");
        assert!(repr.brow.iter().all(|&v| v == 0.0), "brow workspace not reset");
    }

    fn swap_count(repr: &BgBasis) -> usize {
        repr.ops.iter().filter(|op| matches!(op, Op::Swap(_, _))).count()
    }

    #[test]
    fn identity_is_trivial() {
        let repr = BgBasis::identity(4);
        check_invariants(&repr);
        let x = repr.ftran_dense(&[1.0, -2.0, 3.0, 0.5]);
        assert_eq!(x, vec![1.0, -2.0, 3.0, 0.5]);
        assert_eq!(repr.btran_dense(&x), vec![1.0, -2.0, 3.0, 0.5]);
    }

    #[test]
    fn refactor_matches_dense_inverse() {
        let a = basis_csc(vec![
            vec![2.0, 0.0, 1.0, 1.0],
            vec![0.0, 3.0, 0.0, -1.0],
            vec![1.0, 1.0, 1.0, 0.0],
        ]);
        let basis = vec![0usize, 3, 2];
        let mut repr = BgBasis::identity(3);
        assert!(repr.refactor(&a, 4, &basis));
        check_invariants(&repr);
        let inv = dense_inverse(&a, 4, &basis);
        assert_matches_inverse(&repr, &inv, 1e-9, "refactor");
        for i in 0..3 {
            let row = repr.binv_row(i);
            for (j, got) in row.iter().enumerate() {
                assert!((got - inv[(i, j)]).abs() < 1e-9, "row {i} col {j}");
            }
        }
    }

    /// The BG update must track an explicit reinversion through a chain
    /// of exchanges — including re-pivoting a slot that was already
    /// replaced and pivoting at the last position (empty window).
    #[test]
    fn bg_updates_track_explicit_reinversion() {
        let a = basis_csc(vec![
            vec![1.0, 2.0, 0.0, 1.0],
            vec![0.0, 1.0, 1.0, -1.0],
            vec![1.0, 0.0, 2.0, 0.5],
            vec![0.0, -1.0, 1.0, 2.0],
        ]);
        let n = 4;
        let m = 4;
        let mut repr = BgBasis::identity(m);
        let mut basis: Vec<usize> = (n..n + m).collect();
        for &(col, slot) in &[(1usize, 0usize), (2, 2), (0, 1), (3, 0)] {
            let (idx, vals) = a.col(col);
            let u = repr.ftran_col(idx, vals);
            let support: Vec<usize> =
                (0..m).filter(|&i| u[i].abs() > qava_linalg::EPS).collect();
            assert!(u[slot].abs() > 1e-9, "test exchange must be pivotable");
            repr.update(slot, &u, &support, idx, vals);
            basis[slot] = col;
            check_invariants(&repr);
            let inv = dense_inverse(&a, n, &basis);
            assert_matches_inverse(&repr, &inv, 1e-8, &format!("after col {col} -> slot {slot}"));
        }
        assert_eq!(repr.updates, 4);
    }

    /// A spike row dominating a tiny diagonal must interchange instead
    /// of amplifying: the whole superdiagonal band of this U dominates
    /// its 0.1 diagonals, so one exchange at the first position chases
    /// an interchange through every window column.
    #[test]
    fn dominated_diagonals_interchange_and_stay_accurate() {
        let m = 4;
        let a = basis_csc(vec![
            vec![1.0, 2.0, 0.0, 0.0, 1.0],
            vec![0.0, 0.1, 2.0, 0.0, 1.0],
            vec![0.0, 0.0, 0.1, 2.0, 1.0],
            vec![0.0, 0.0, 0.0, 0.1, 1.0],
        ]);
        let mut repr = BgBasis::identity(m);
        let mut basis = vec![0usize, 1, 2, 3];
        assert!(repr.refactor(&a, 5, &basis));
        let (idx, vals) = a.col(4);
        let u = repr.ftran_col(idx, vals);
        let support: Vec<usize> = (0..m).filter(|&i| u[i].abs() > qava_linalg::EPS).collect();
        assert!(u[0].abs() > 1.0, "entering direction must dominate slot 0");
        repr.update(0, &u, &support, idx, vals);
        basis[0] = 4;
        check_invariants(&repr);
        assert_eq!(repr.interchanges, 3, "each window column must interchange");
        assert_eq!(swap_count(&repr), 3, "interchanges must be recorded as swap ops");
        assert!(
            repr.max_growth >= 1.0 && repr.max_growth < 50.0,
            "partial pivoting must bound chased-row growth, got {}",
            repr.max_growth
        );
        assert_eq!(repr.acc_refactors, 0, "a stable exchange must pass the cross-check");
        let inv = dense_inverse(&a, 5, &basis);
        assert_matches_inverse(&repr, &inv, 1e-6, "after interchanging exchange");
        // The stability counters describe the engine's lifetime:
        // refactorization resets the update state but not them.
        assert!(repr.refactor(&a, 5, &basis));
        assert_eq!(repr.updates, 0);
        assert_eq!(repr.stability().interchanges, 3);
    }

    /// The binv_row fast path must agree with the generic dense btran
    /// once updates have rotated the order and stacked swaps and etas.
    #[test]
    fn unit_btran_fast_path_matches_generic_after_updates() {
        let a = basis_csc(vec![
            vec![1.0, 2.0, 0.0, 1.0],
            vec![0.0, 0.1, 1.0, -1.0],
            vec![1.0, 0.0, 2.0, 0.5],
            vec![0.0, -1.0, 1.0, 2.0],
        ]);
        let m = 4;
        let mut repr = BgBasis::identity(m);
        for &(col, slot) in &[(1usize, 0usize), (2, 2), (0, 1)] {
            let (idx, vals) = a.col(col);
            let u = repr.ftran_col(idx, vals);
            let support: Vec<usize> =
                (0..m).filter(|&i| u[i].abs() > qava_linalg::EPS).collect();
            repr.update(slot, &u, &support, idx, vals);
        }
        assert!(repr.updates > 0 && !repr.ops.is_empty(), "fast path must see stored ops");
        for i in 0..m {
            let fast = repr.binv_row(i);
            let mut e = vec![0.0; m];
            e[i] = 1.0;
            let generic = repr.btran_dense(&e);
            for (g, w) in fast.iter().zip(&generic) {
                assert!((g - w).abs() < 1e-12, "row {i}: {g} vs {w}");
            }
        }
    }

    /// Randomized stress: long random pivot chains on random sparse
    /// systems, each step checked against the dense inverse and the FT
    /// engine (the two update schemes must describe the same basis).
    #[test]
    fn random_pivot_chains_match_dense_inverse_and_ft_engine() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0
        };
        for m in [3usize, 6, 11, 17] {
            let n = m + 5;
            // Random sparse system; every third diagonal anchor is made
            // small so the interchange branch is genuinely exercised.
            let mut rows = vec![vec![0.0; n]; m];
            for (i, row) in rows.iter_mut().enumerate() {
                for (j, v) in row.iter_mut().enumerate() {
                    if j % m == i {
                        *v = if j % 3 == 0 { 0.2 } else { 2.0 + next().abs() };
                    } else if next() > 0.4 {
                        *v = next();
                    }
                }
            }
            let a = basis_csc(rows);
            let mut bg = BgBasis::identity(m);
            let mut ft = FtBasis::identity(m);
            let mut basis: Vec<usize> = (n..n + m).collect();
            let mut updates_done = 0;
            for step in 0..3 * m {
                let col = ((next().abs() * n as f64) as usize).min(n - 1);
                let (idx, vals) = a.col(col);
                if basis.contains(&col) || idx.is_empty() {
                    continue;
                }
                let u = bg.ftran_col(idx, vals);
                let Some((slot, _)) = u
                    .iter()
                    .enumerate()
                    .filter(|(i, v)| v.abs() > 0.1 && basis[*i] != col)
                    .max_by(|x, y| x.1.abs().total_cmp(&y.1.abs()))
                else {
                    continue;
                };
                let support: Vec<usize> =
                    (0..m).filter(|&i| u[i].abs() > qava_linalg::EPS).collect();
                bg.update(slot, &u, &support, idx, vals);
                let u_ft = ft.ftran_col(idx, vals);
                let support_ft: Vec<usize> =
                    (0..m).filter(|&i| u_ft[i].abs() > qava_linalg::EPS).collect();
                ft.update(slot, &u_ft, &support_ft, idx, vals);
                basis[slot] = col;
                updates_done += 1;
                check_invariants(&bg);
                let inv = dense_inverse(&a, n, &basis);
                assert_matches_inverse(&bg, &inv, 1e-7, &format!("m={m} step={step}"));
                let b: Vec<f64> = (0..m).map(|i| (i as f64) * 0.3 - 0.7).collect();
                let xb = bg.ftran_dense(&b);
                let xf = ft.ftran_dense(&b);
                for (g, w) in xb.iter().zip(&xf) {
                    assert!((g - w).abs() < 1e-7, "bg vs ft diverged: {g} vs {w}");
                }
            }
            assert!(updates_done >= m, "m={m}: chain too short to be meaningful");
        }
    }

    #[test]
    fn refactor_triggers_fire() {
        // Column 1's bottom entry is tiny, so pivoting it into slot 1
        // dictates a tiny new diagonal (the window is empty — no
        // interchange can rescue a genuinely tiny final pivot).
        let a = basis_csc(vec![vec![1.0, 4.0], vec![0.0, 1e-9]]);
        let mut repr = BgBasis::identity(2);
        assert!(repr.refactor(&a, 2, &[0, 3]));
        assert!(!repr.should_refactor(0));
        let (idx, vals) = a.col(1);
        repr.update(1, &[4.0, 1e-9], &[0, 1], idx, vals);
        assert!(repr.shaky, "tiny spike pivot must flag shaky");
        assert!(repr.should_refactor(0));
        assert!(repr.refactor(&a, 2, &[0, 1]));
        assert!(!repr.should_refactor(0));
        // Update-count backstop.
        let single = basis_csc(vec![vec![1.0]]);
        let mut repr = BgBasis::identity(1);
        assert!(repr.refactor(&single, 1, &[0]));
        for n in 0..MAX_UPDATES {
            assert!(!repr.should_refactor(0), "premature trigger after {n} updates");
            repr.update(0, &[1.0], &[0], &[0], &[1.0]);
        }
        assert!(repr.should_refactor(0));
        // A singular refactorization keeps the incremental state.
        let singular = basis_csc(vec![vec![0.0]]);
        assert!(!repr.refactor(&singular, 1, &[0]));
        assert!(repr.should_refactor(0), "state kept after failed refactor");
    }

    /// The fill-in trigger: dense spikes into a sparse (diagonal)
    /// factorization grow U until the threshold fires.
    #[test]
    fn fill_in_growth_triggers_refactorization() {
        let m = 12;
        let mut rows = vec![vec![0.0; 2 * m]; m];
        for (i, row) in rows.iter_mut().enumerate() {
            row[i] = 3.0;
            for j in 0..m {
                row[m + j] = if i == j { 4.0 } else { 1.0 / (1.0 + (i + 2 * j) as f64) };
            }
        }
        let a = basis_csc(rows);
        let mut repr = BgBasis::identity(m);
        assert!(repr.refactor(&a, 2 * m, &(0..m).collect::<Vec<_>>()));
        let mut fired = false;
        for slot in 0..m {
            let (idx, vals) = a.col(m + slot);
            let u = repr.ftran_col(idx, vals);
            assert!(u[slot].abs() > 0.1, "dominant diagonal keeps the exchange pivotable");
            let support: Vec<usize> = (0..m).filter(|&i| u[i].abs() > qava_linalg::EPS).collect();
            repr.update(slot, &u, &support, idx, vals);
            check_invariants(&repr);
            if repr.should_refactor(0) {
                fired = true;
                break;
            }
        }
        assert!(fired, "dense spikes never tripped the fill-in trigger");
    }
}
