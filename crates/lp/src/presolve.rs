//! Presolve for standard-form LPs `min cᵀx, A·x = b, x ≥ 0, b ≥ 0`.
//!
//! The synthesis pipelines generate thousands of structurally similar
//! template LPs whose rows are full of easy structure: empty rows from
//! vacuous coefficient matches, duplicate rows from repeated region
//! constraints, and singleton rows that outright fix a variable. Removing
//! them before the simplex both shrinks the basis and removes the
//! degenerate pivots those rows would cause.
//!
//! Reductions, iterated to a fixpoint:
//!
//! 1. **Empty rows** — `0 = b` is dropped when `b ≈ 0`, infeasible
//!    otherwise.
//! 2. **Singleton rows** — `a·x_j = b` fixes `x_j = b/a` (infeasible if
//!    negative); the fixed variable is substituted out of every row.
//! 3. **Duplicate rows** — rows with an identical normalized pattern are
//!    deduplicated. Equal right-hand sides drop the copy; clearly
//!    conflicting ones prove infeasibility; borderline ones are kept for
//!    the simplex to arbitrate.
//! 4. **Empty columns** — a variable absent from every row is fixed at 0
//!    (or proves the LP unbounded when its cost is negative).
//!
//! The output is the reduced problem plus a [`Restore`] recipe mapping a
//! reduced solution back onto the original variable space.

use crate::LpError;
use qava_linalg::EPS;

/// A standard-form LP in sparse row representation.
#[derive(Debug, Clone)]
pub struct StdRows {
    /// Objective coefficients, one per column.
    pub costs: Vec<f64>,
    /// Sparse rows `[(col, coeff), …]`; the invariant `b ≥ 0` is kept by
    /// sign-normalizing rows.
    pub rows: Vec<Vec<(usize, f64)>>,
    /// Right-hand side, aligned with `rows`.
    pub b: Vec<f64>,
    /// Total number of columns.
    pub ncols: usize,
}

/// Recipe to map a reduced solution back to the original columns.
#[derive(Debug, Clone)]
pub struct Restore {
    /// Original column index of each reduced column.
    pub kept_cols: Vec<usize>,
    /// `(original column, value)` for variables fixed by presolve.
    pub fixed: Vec<(usize, f64)>,
    /// Number of original columns.
    pub ncols: usize,
    /// An empty column with negative cost was removed: the objective is
    /// unbounded **if** the remaining system turns out feasible. The
    /// caller must check this after solving the reduced LP — reporting
    /// unboundedness eagerly would mask infeasibility, which takes
    /// precedence (matching the two-phase oracle).
    pub unbounded_if_feasible: bool,
}

impl Restore {
    /// Expands a reduced solution to the original variable space.
    pub fn expand(&self, reduced_x: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.ncols];
        for (&orig, &v) in self.kept_cols.iter().zip(reduced_x) {
            x[orig] = v;
        }
        for &(col, v) in &self.fixed {
            x[col] = v;
        }
        x
    }
}

/// Runs the reductions; returns the reduced LP and the restore recipe.
///
/// # Errors
///
/// [`LpError::Infeasible`] when a reduction proves the system has no
/// solution with `x ≥ 0`; [`LpError::Unbounded`] when an empty column
/// with negative cost makes the objective unbounded below.
pub fn reduce(lp: StdRows) -> Result<(StdRows, Restore), LpError> {
    let ncols = lp.ncols;
    let mut rows = lp.rows;
    let mut b = lp.b;
    let costs = lp.costs;
    let mut fixed: Vec<(usize, f64)> = Vec::new();
    let mut removed_col = vec![false; ncols];
    let b_norm = b.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()));
    let feas_tol = 1e-9 * (1.0 + b_norm);

    // -- Singleton + empty rows, iterated: substitution creates both. --
    loop {
        let mut changed = false;
        let mut i = 0;
        while i < rows.len() {
            match rows[i].len() {
                0 => {
                    if b[i].abs() > feas_tol {
                        return Err(LpError::Infeasible);
                    }
                    rows.swap_remove(i);
                    let blen = b.len();
                    b.swap(i, blen - 1);
                    b.pop();
                    changed = true;
                    // Re-examine the row swapped into slot i.
                }
                1 => {
                    let (col, coeff) = rows[i][0];
                    let value = b[i] / coeff;
                    if value < -1e-7 {
                        return Err(LpError::Infeasible);
                    }
                    let value = value.max(0.0);
                    fixed.push((col, value));
                    removed_col[col] = true;
                    rows.swap_remove(i);
                    let blen = b.len();
                    b.swap(i, blen - 1);
                    b.pop();
                    // Substitute into every remaining row.
                    for (k, row) in rows.iter_mut().enumerate() {
                        if let Some(pos) = row.iter().position(|&(c, _)| c == col) {
                            let (_, a) = row.swap_remove(pos);
                            b[k] -= a * value;
                        }
                        if b[k] < 0.0 {
                            // Keep the standard-form invariant b ≥ 0.
                            b[k] = -b[k];
                            for e in row.iter_mut() {
                                e.1 = -e.1;
                            }
                        }
                    }
                    changed = true;
                }
                _ => i += 1,
            }
        }
        if !changed {
            break;
        }
    }

    // -- Duplicate rows (normalized pattern + coefficients). --
    {
        use std::collections::HashMap;
        let mut seen: HashMap<Vec<(usize, u64)>, (usize, f64)> = HashMap::new();
        let mut keep = vec![true; rows.len()];
        for (i, row) in rows.iter_mut().enumerate() {
            row.sort_by_key(|&(c, _)| c);
            let lead = row[0].1;
            let key: Vec<(usize, u64)> =
                row.iter().map(|&(c, v)| (c, (v / lead).to_bits())).collect();
            let rhs = b[i] / lead;
            match seen.get(&key) {
                Some(&(_, prev_rhs)) => {
                    let diff = (rhs - prev_rhs).abs();
                    if diff <= 1e-12 * (1.0 + rhs.abs().max(prev_rhs.abs())) {
                        keep[i] = false;
                    } else if diff > 1e-7 * (1.0 + rhs.abs().max(prev_rhs.abs())) {
                        // Same left-hand side, clearly different right-hand
                        // side. With a positive lead the two equalities
                        // conflict outright; a negated lead means the rhs
                        // ratio flipped sign, which is still the same
                        // equation pair. Either way x would have to satisfy
                        // both, which is impossible.
                        return Err(LpError::Infeasible);
                    }
                    // Borderline: keep both, the simplex handles it.
                }
                None => {
                    seen.insert(key, (i, rhs));
                }
            }
        }
        let mut ki = keep.iter();
        rows.retain(|_| *ki.next().expect("keep mask aligned"));
        let mut kb = keep.iter();
        b.retain(|_| *kb.next().expect("keep mask aligned"));
    }

    // -- Empty columns: fix at 0, or detect an unbounded ray. --
    let mut present = vec![false; ncols];
    for row in &rows {
        for &(c, _) in row {
            present[c] = true;
        }
    }
    let mut unbounded_if_feasible = false;
    for c in 0..ncols {
        if !present[c] && !removed_col[c] {
            if costs[c] < -EPS {
                // An improving ray — but only a feasible system makes the
                // LP unbounded rather than infeasible.
                unbounded_if_feasible = true;
            }
            removed_col[c] = true;
            // Value 0 is the default in Restore::expand; no entry needed.
        }
    }

    // -- Compact the kept columns. --
    let mut new_index = vec![usize::MAX; ncols];
    let mut kept_cols = Vec::new();
    for c in 0..ncols {
        if !removed_col[c] {
            new_index[c] = kept_cols.len();
            kept_cols.push(c);
        }
    }
    let mut out_rows = rows;
    for row in &mut out_rows {
        for e in row.iter_mut() {
            e.0 = new_index[e.0];
        }
    }
    let out_costs: Vec<f64> = kept_cols.iter().map(|&c| costs[c]).collect();
    let nkept = kept_cols.len();

    Ok((
        StdRows { costs: out_costs, rows: out_rows, b, ncols: nkept },
        Restore { kept_cols, fixed, ncols, unbounded_if_feasible },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp(rows: Vec<Vec<(usize, f64)>>, b: Vec<f64>, costs: Vec<f64>) -> StdRows {
        let ncols = costs.len();
        StdRows { costs, rows, b, ncols }
    }

    #[test]
    fn empty_row_dropped_or_infeasible() {
        let (red, _) = reduce(lp(vec![vec![], vec![(0, 1.0)]], vec![0.0, 2.0], vec![1.0])).unwrap();
        assert!(red.rows.is_empty(), "singleton also fires: {red:?}");
        let r = reduce(lp(vec![vec![]], vec![1.0], vec![1.0]));
        assert_eq!(r.unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn singleton_fixes_and_substitutes() {
        // 2·x0 = 4 fixes x0 = 2; row 1: x0 + x1 = 5 becomes x1 = 3 (also a
        // singleton, so everything presolves away).
        let (red, restore) = reduce(lp(
            vec![vec![(0, 2.0)], vec![(0, 1.0), (1, 1.0)]],
            vec![4.0, 5.0],
            vec![0.0, 0.0],
        ))
        .unwrap();
        assert!(red.rows.is_empty());
        let x = restore.expand(&[]);
        assert_eq!(x, vec![2.0, 3.0]);
    }

    #[test]
    fn singleton_negative_value_infeasible() {
        let r = reduce(lp(vec![vec![(0, -1.0)], vec![(0, 1.0), (1, 1.0)]], vec![3.0, 1.0], vec![0.0, 0.0]));
        assert_eq!(r.unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn substitution_renormalizes_rhs_sign() {
        // x0 = 3; then x0 + x1 = 1 becomes x1 = −2 < 0: infeasible.
        let r = reduce(lp(
            vec![vec![(0, 1.0)], vec![(0, 1.0), (1, 1.0)]],
            vec![3.0, 1.0],
            vec![0.0, 0.0],
        ));
        assert_eq!(r.unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn duplicate_rows_deduplicated() {
        let (red, _) = reduce(lp(
            vec![
                vec![(0, 1.0), (1, 1.0)],
                vec![(0, 2.0), (1, 2.0)], // same normalized row, same rhs ratio
                vec![(0, 1.0), (1, -1.0)],
            ],
            vec![2.0, 4.0, 0.0],
            vec![1.0, 1.0],
        ))
        .unwrap();
        assert_eq!(red.rows.len(), 2);
    }

    #[test]
    fn conflicting_duplicate_rows_infeasible() {
        let r = reduce(lp(
            vec![vec![(0, 1.0), (1, 1.0)], vec![(0, 1.0), (1, 1.0)]],
            vec![2.0, 5.0],
            vec![1.0, 1.0],
        ));
        assert_eq!(r.unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn empty_column_zero_or_unbounded() {
        let (red, restore) =
            reduce(lp(vec![vec![(0, 1.0)], vec![(0, 1.0), (1, 1.0)]], vec![1.0, 1.0], vec![0.0, 0.0, 3.0])).unwrap();
        assert_eq!(red.ncols, 0, "x0, x1 fixed by singleton chain; x2 empty");
        let x = restore.expand(&[]);
        assert_eq!(x[2], 0.0);
        let (_, restore) = reduce(lp(vec![vec![(0, 1.0)]], vec![1.0], vec![0.0, -1.0])).unwrap();
        assert!(restore.unbounded_if_feasible, "negative-cost empty column defers to feasibility");
    }

    #[test]
    fn expand_maps_kept_columns() {
        let (red, restore) = reduce(lp(
            vec![vec![(0, 1.0), (2, 1.0)]],
            vec![2.0],
            vec![1.0, 0.0, 1.0],
        ))
        .unwrap();
        // Column 1 is empty (cost ≥ 0, fixed at 0); columns 0 and 2 kept.
        assert_eq!(red.ncols, 2);
        let x = restore.expand(&[1.5, 0.5]);
        assert_eq!(x, vec![1.5, 0.0, 0.5]);
    }
}
