//! Property test: `qava_pts::simplify` preserves the violation probability.
//!
//! Random structured programs over small integer ranges are lowered through
//! `qava-lang` (whose pipeline applies the full simplification) and checked
//! against the exhaustive value-iteration oracle of `qava-core::fixpoint`
//! run on the same program — the oracle explores the *simplified* system's
//! reachable states exactly, so equality with a hand-rolled interpreter of
//! the original source is the real property under test.


// NOTE: these integration tests deliberately run through the *deprecated*
// session-less `synthesize_*` shims: they are the compatibility surface the
// engine API (PR 5) keeps alive for downstream code, and this file is the
// proof that the shims still compile and behave. New code uses
// `qava::analysis::engine` (see `examples/quickstart.rs`).
#![allow(deprecated)]

use proptest::prelude::*;
use qava::analysis::fixpoint::VpfOracle;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};
use std::collections::BTreeMap;

/// A random but structurally valid program: a bounded counter loop with a
/// probabilistic body and a final threshold assertion.
#[derive(Debug, Clone)]
struct RandomWalkProgram {
    start: i32,
    hi: i32,
    up_prob_percent: u8,
    step_up: i32,
    step_down: i32,
    threshold: i32,
}

impl RandomWalkProgram {
    fn source(&self) -> String {
        format!(
            r"
            x := {start}; t := 0;
            while x >= 1 and x <= {hi} and t <= 40
                invariant x >= {lo_inv} and x <= {hi_inv} and t >= 0 and t <= 41 {{
                if prob(0.{p:02}) {{ x, t := x + {up}, t + 1; }}
                else {{ x, t := x - {down}, t + 1; }}
            }}
            assert x >= {thr};
            ",
            start = self.start,
            hi = self.hi,
            lo_inv = 1 - self.step_down,
            hi_inv = self.hi + self.step_up,
            p = self.up_prob_percent,
            up = self.step_up,
            down = self.step_down,
            thr = self.threshold,
        )
    }

    /// Direct interpreter for the source semantics, never touching the PTS
    /// pipeline: exact expected violation frequency by exhaustive
    /// enumeration over the bounded step budget.
    fn exact_vpf(&self) -> f64 {
        // Dynamic programming over (x, t), t ≤ 41 steps.
        let p = f64::from(self.up_prob_percent) / 100.0;
        let lo_state = 1 - self.step_down - self.step_up - 1;
        let hi_state = self.hi + self.step_up + self.step_down + 1;
        let width = (hi_state - lo_state + 1) as usize;
        let idx = |x: i32| (x - lo_state) as usize;
        // violation[x][t]: probability of eventually violating from (x, t).
        // Work backwards from t = 41 (loop cannot continue past t = 40).
        let violated = |x: i32| x < self.threshold;
        let mut next = vec![0.0f64; width];
        for x in lo_state..=hi_state {
            next[idx(x)] = if violated(x) { 1.0 } else { 0.0 };
        }
        for t in (0..=40).rev() {
            let mut cur = vec![0.0f64; width];
            for x in lo_state..=hi_state {
                let in_loop = (1..=self.hi).contains(&x) && t <= 40;
                cur[idx(x)] = if in_loop {
                    p * next[idx(x + self.step_up)]
                        + (1.0 - p) * next[idx(x - self.step_down)]
                } else if violated(x) {
                    1.0
                } else {
                    0.0
                };
            }
            next = cur;
            let _ = t;
        }
        next[idx(self.start)]
    }
}

fn program_strategy() -> impl Strategy<Value = RandomWalkProgram> {
    (1i32..8, 4i32..10, 5u8..96, 1i32..3, 1i32..3, -2i32..12).prop_map(
        |(start, hi, p, up, down, thr)| RandomWalkProgram {
            start: start.min(hi),
            hi,
            up_prob_percent: p,
            step_up: up,
            step_down: down,
            threshold: thr,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The compiled (simplified) PTS's vpf equals the direct interpreter's.
    #[test]
    fn simplified_pts_preserves_vpf(prog in program_strategy()) {
        let pts = qava::lang::compile(&prog.source(), &BTreeMap::new()).unwrap();
        let oracle = VpfOracle::explore(&pts, 200_000).unwrap();
        let (lo, hi) = oracle.interval(5_000);
        let exact = prog.exact_vpf();
        prop_assert!(hi - lo < 1e-9, "oracle failed to converge: [{lo}, {hi}]");
        prop_assert!(
            (lo - exact).abs() < 1e-9,
            "pipeline vpf {lo} differs from direct interpretation {exact}\n{}",
            prog.source()
        );
    }

    /// Upper-bound synthesis is sound on every random program where it
    /// succeeds: the certified bound dominates the exact vpf.
    #[test]
    fn explinsyn_sound_on_random_programs(prog in program_strategy()) {
        let pts = qava::lang::compile(&prog.source(), &BTreeMap::new()).unwrap();
        if let Ok(r) = qava::analysis::explinsyn::synthesize_upper_bound(&pts) {
            let exact = prog.exact_vpf();
            prop_assert!(
                r.bound.to_f64() >= exact - 1e-9,
                "bound {} below exact vpf {exact}\n{}",
                r.bound,
                prog.source()
            );
        }
    }

    /// Hoeffding synthesis is likewise sound where it succeeds.
    #[test]
    fn hoeffding_sound_on_random_programs(prog in program_strategy()) {
        use qava::analysis::hoeffding::{synthesize_reprsm_bound_with, BoundKind};
        let pts = qava::lang::compile(&prog.source(), &BTreeMap::new()).unwrap();
        if let Ok(r) = synthesize_reprsm_bound_with(&pts, BoundKind::Hoeffding, 20) {
            let exact = prog.exact_vpf();
            prop_assert!(
                r.bound.to_f64() >= exact - 1e-9,
                "bound {} below exact vpf {exact}\n{}",
                r.bound,
                prog.source()
            );
        }
    }
}

/// Deterministic spot check that the interpreter itself is right, so the
/// property above is anchored: compare against a seeded simulation once.
#[test]
fn interpreter_matches_simulation() {
    let prog = RandomWalkProgram {
        start: 3,
        hi: 6,
        up_prob_percent: 55,
        step_up: 1,
        step_down: 1,
        threshold: 5,
    };
    let pts = qava::lang::compile(&prog.source(), &BTreeMap::new()).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let mut violations = 0u32;
    let trials = 200_000u32;
    for _ in 0..trials {
        let mut st = pts.initial_state();
        for _ in 0..1_000 {
            match pts.step(&st, &mut rng) {
                qava::pts::StepOutcome::Moved(s) => st = s,
                _ => break,
            }
        }
        if st.loc == pts.failure_location() {
            violations += 1;
        }
        // Mix the rng a little so trials differ even on absorbed paths.
        let _: f64 = rng.gen();
    }
    let sim = f64::from(violations) / f64::from(trials);
    let exact = prog.exact_vpf();
    assert!((sim - exact).abs() < 0.01, "sim {sim} vs exact {exact}");
}
