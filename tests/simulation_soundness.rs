//! Soundness against ground truth: for programs whose violation
//! probability is large enough to estimate, the certified bounds must
//! bracket a seeded Monte-Carlo estimate. This is a stronger validation
//! than the paper reports (it had no executable ground truth).


// NOTE: these integration tests deliberately run through the *deprecated*
// session-less `synthesize_*` shims: they are the compatibility surface the
// engine API (PR 5) keeps alive for downstream code, and this file is the
// proof that the shims still compile and behave. New code uses
// `qava::analysis::engine` (see `examples/quickstart.rs`).
#![allow(deprecated)]

use qava::analysis::explinsyn::synthesize_upper_bound;
use qava::analysis::explowsyn::synthesize_lower_bound;
use qava::analysis::hoeffding::{synthesize_reprsm_bound, BoundKind};
use qava::sim::Simulator;
use std::collections::BTreeMap;

fn compile(src: &str) -> qava::pts::Pts {
    qava::lang::compile(src, &BTreeMap::new()).expect("test program compiles")
}

#[track_caller]
fn check_upper(src: &str, trials: usize) {
    let pts = compile(src);
    let upper = synthesize_upper_bound(&pts).expect("upper bound synthesizes");
    let est = Simulator::new(0xABCD).estimate_violation(&pts, trials, 200_000);
    assert!(
        est.lower_ci() <= upper.bound.to_f64() + 1e-12,
        "upper bound {} below the empirical CI floor {}",
        upper.bound,
        est.lower_ci()
    );
}

#[track_caller]
fn check_lower(src: &str, trials: usize) {
    let pts = compile(src);
    let lower = synthesize_lower_bound(&pts).expect("lower bound synthesizes");
    let est = Simulator::new(0xABCD).estimate_violation(&pts, trials, 200_000);
    assert!(
        lower.bound.to_f64() <= est.upper_ci() + 1e-12,
        "lower bound {} above the empirical CI ceiling {}",
        lower.bound,
        est.upper_ci()
    );
}

/// A short race whose violation probability is around 15%.
const SHORT_RACE: &str = r"
    x := 2; y := 0;
    while x <= 9 and y <= 9 invariant x <= 10 and y <= 11 {
        if prob(0.5) { x, y := x + 1, y + 2; } else { x := x + 1; }
    }
    assert x >= 10;
";

#[test]
fn short_race_upper_sound() {
    check_upper(SHORT_RACE, 50_000);
}

/// A biased walk with a moderate violation probability.
const SHORT_WALK: &str = r"
    x := 0; t := 0;
    while x <= 9 and t <= 30 invariant x >= -31 and x <= 10 and t >= 0 and t <= 31 {
        switch {
            prob(0.75): { x, t := x + 1, t + 1; }
            prob(0.25): { x, t := x - 1, t + 1; }
        }
    }
    assert x >= 10;
";

#[test]
fn short_walk_upper_sound() {
    check_upper(SHORT_WALK, 50_000);
}

#[test]
fn short_walk_hoeffding_sound() {
    let pts = compile(SHORT_WALK);
    let upper = synthesize_reprsm_bound(&pts, BoundKind::Hoeffding).unwrap();
    let est = Simulator::new(0xABCD).estimate_violation(&pts, 50_000, 100_000);
    assert!(est.lower_ci() <= upper.bound.to_f64());
}

/// The §3.3 hardware walk with an exaggerated fault rate, so the lower
/// bound sits in estimable territory.
const FAULTY_WALK: &str = r"
    x := 1;
    while x <= 19 invariant x <= 20 {
        switch {
            prob(0.01): { exit; }
            prob(0.75 * 0.99): { x := x + 1; }
            prob(0.25 * 0.99): { x := x - 1; }
        }
    }
    assert false;
";

#[test]
fn faulty_walk_lower_sound() {
    check_lower(FAULTY_WALK, 50_000);
}

#[test]
fn faulty_walk_bracket() {
    let pts = compile(FAULTY_WALK);
    let lower = synthesize_lower_bound(&pts).unwrap();
    let upper = synthesize_upper_bound(&pts).unwrap();
    let est = Simulator::new(0xF00D).estimate_violation(&pts, 100_000, 100_000);
    assert!(lower.bound.to_f64() <= est.upper_ci());
    assert!(est.lower_ci() <= upper.bound.to_f64());
    // The bracket is informative, not vacuous: both ends within 5% of the
    // estimate for this well-behaved program.
    assert!(upper.bound.to_f64() - lower.bound.to_f64() < 0.05);
}

/// A coin flip has an exactly computable violation probability; all three
/// syntheses must agree with it.
#[test]
fn coin_flip_exact_everywhere() {
    let src = r"
        x := 0;
        if prob(0.25) { assert false; } else { exit; }
    ";
    let pts = compile(src);
    let upper = synthesize_upper_bound(&pts).unwrap();
    let lower = synthesize_lower_bound(&pts).unwrap();
    assert!((upper.bound.to_f64() - 0.25).abs() < 1e-4, "upper {}", upper.bound);
    assert!((lower.bound.to_f64() - 0.25).abs() < 1e-4, "lower {}", lower.bound);
    let est = Simulator::new(3).estimate_violation(&pts, 200_000, 100);
    assert!((est.probability - 0.25).abs() < 0.01);
}

/// Two sequential gates: violation probability is the product 0.3 × 0.5.
#[test]
fn sequential_gates_product() {
    let src = r"
        x := 0;
        if prob(0.3) {
            if prob(0.5) { assert false; } else { exit; }
        } else { exit; }
    ";
    let pts = compile(src);
    let upper = synthesize_upper_bound(&pts).unwrap();
    let lower = synthesize_lower_bound(&pts).unwrap();
    assert!((upper.bound.to_f64() - 0.15).abs() < 1e-4, "upper {}", upper.bound);
    assert!((lower.bound.to_f64() - 0.15).abs() < 1e-4, "lower {}", lower.bound);
}

/// The simulator agrees with the closed-form ruin probability of the
/// asymmetric gambler's-ruin walk, and the certified bounds bracket it.
/// For p = 3/4 up, start 1, absorbing at 0 and 20:
/// P[ruin] = ((q/p)^1 − (q/p)^20) / (1 − (q/p)^20) with q/p = 1/3.
#[test]
fn gamblers_ruin_closed_form() {
    let src = r"
        x := 1;
        while x >= 1 and x <= 19 invariant x >= 0 and x <= 20 {
            if prob(0.75) { x := x + 1; } else { x := x - 1; }
        }
        assert x >= 20;
    ";
    let pts = compile(src);
    let rho: f64 = 1.0 / 3.0;
    let ruin = (rho - rho.powi(20)) / (1.0 - rho.powi(20));
    let est = Simulator::new(11).estimate_violation(&pts, 200_000, 100_000);
    assert!((est.probability - ruin).abs() < 0.005, "sim {} vs exact {ruin}", est.probability);
    let upper = synthesize_upper_bound(&pts).unwrap();
    assert!(upper.bound.to_f64() + 1e-9 >= ruin, "upper {} vs exact {ruin}", upper.bound);
    // The optimal exponential template for gambler's ruin is tight at the
    // closed form's leading term (q/p)^x.
    assert!(upper.bound.to_f64() <= rho * 1.05, "upper {} far from (q/p)^1", upper.bound);
}
