//! Cross-algorithm shape properties that the paper proves and that must
//! hold on **every** benchmark row, independent of absolute values:
//!
//! * Theorem 5.5 (completeness): ExpLinSyn dominates every other
//!   exponential-template bound, in particular the Hoeffding one.
//! * Remark 2: the Hoeffding bound dominates the Azuma baseline.
//! * Lower bounds never exceed upper bounds.
//! * Bounds degrade monotonically with the benchmark parameter in the
//!   direction the paper's tables show.


// NOTE: these integration tests deliberately run through the *deprecated*
// session-less `synthesize_*` shims: they are the compatibility surface the
// engine API (PR 5) keeps alive for downstream code, and this file is the
// proof that the shims still compile and behave. New code uses
// `qava::analysis::engine` (see `examples/quickstart.rs`).
#![allow(deprecated)]

use qava::analysis::explinsyn::synthesize_upper_bound;
use qava::analysis::explowsyn::synthesize_lower_bound;
use qava::analysis::hoeffding::{synthesize_reprsm_bound, BoundKind};
use qava::analysis::suite::{table1, table2};

/// Theorem 5.5 on all of Table 1: the complete algorithm is at least as
/// tight as the RepRSM one wherever both succeed.
#[test]
fn explinsyn_dominates_hoeffding_on_table1() {
    for b in table1() {
        let pts = b.compile();
        let (Ok(h), Ok(e)) = (
            synthesize_reprsm_bound(&pts, BoundKind::Hoeffding),
            synthesize_upper_bound(&pts),
        ) else {
            continue;
        };
        assert!(
            e.bound.ln() <= h.bound.ln() + 1e-6,
            "{} ({}): complete {} vs hoeffding {}",
            b.name,
            b.label,
            e.bound,
            h.bound
        );
    }
}

/// Remark 2 on all of Table 1: Azuma never beats Hoeffding.
#[test]
fn hoeffding_dominates_azuma_on_table1() {
    for b in table1() {
        let pts = b.compile();
        let (Ok(h), Ok(a)) = (
            synthesize_reprsm_bound(&pts, BoundKind::Hoeffding),
            synthesize_reprsm_bound(&pts, BoundKind::Azuma),
        ) else {
            continue;
        };
        assert!(
            h.bound.ln() <= a.bound.ln() + 1e-6,
            "{} ({}): hoeffding {} vs azuma {}",
            b.name,
            b.label,
            h.bound,
            a.bound
        );
    }
}

/// Lower bounds stay below upper bounds on the Table 2 programs where both
/// syntheses apply.
#[test]
fn lower_below_upper_on_table2() {
    for b in table2() {
        let pts = b.compile();
        let (Ok(lo), Ok(hi)) = (synthesize_lower_bound(&pts), synthesize_upper_bound(&pts))
        else {
            continue;
        };
        assert!(
            lo.bound.ln() <= hi.bound.ln() + 1e-6,
            "{} ({}): lower {} above upper {}",
            b.name,
            b.label,
            lo.bound,
            hi.bound
        );
    }
}

/// Within each Table 1 benchmark, tightening the parameter (larger
/// deviation / longer deadline / bigger head start) makes the bound
/// smaller — the monotonicity every column of Table 1 exhibits.
#[test]
fn bounds_monotone_within_benchmark_families() {
    let mut rows = table1();
    rows.sort_by(|a, b| a.name.cmp(b.name));
    for family in rows.chunk_by(|a, b| a.name == b.name) {
        // Rows are generated in paper order within a family, which is the
        // direction of decreasing probability except for the StoInv walks,
        // whose parameters move the start *towards* the boundary.
        if !matches!(family[0].name, "Coupon" | "Prspeed" | "Rdwalk" | "RdAdder" | "Robot") {
            continue;
        }
        let mut prev: Option<f64> = None;
        for b in family {
            let r = synthesize_upper_bound(&b.compile()).unwrap();
            if let Some(p) = prev {
                assert!(
                    r.bound.ln() <= p + 1e-6,
                    "{} ({}): bound increased along the sweep",
                    b.name,
                    b.label
                );
            }
            prev = Some(r.bound.ln());
        }
    }
}

/// Lower bounds shrink as the per-step fault probability grows (Table 2's
/// parameter direction).
#[test]
fn lower_bounds_decrease_with_fault_rate() {
    let mut rows = table2();
    rows.sort_by(|a, b| a.name.cmp(b.name));
    for family in rows.chunk_by(|a, b| a.name == b.name) {
        let mut prev: Option<f64> = None;
        for b in family {
            let r = synthesize_lower_bound(&b.compile()).unwrap();
            if let Some(p) = prev {
                assert!(
                    r.bound.to_f64() <= p + 1e-9,
                    "{} ({}): lower bound increased with fault rate",
                    b.name,
                    b.label
                );
            }
            prev = Some(r.bound.to_f64());
        }
    }
}

/// Every Table 1 ratio against the recorded "previous result" points the
/// right way on the StoInv family — the paper's headline (up to thousands
/// of orders of magnitude).
#[test]
fn stoinv_beats_previous_results_by_orders_of_magnitude() {
    for b in table1() {
        if !matches!(b.name, "1DWalk" | "2DWalk" | "3DWalk") {
            continue;
        }
        let prev = b.paper.previous.expect("StoInv rows have previous results");
        let r = synthesize_upper_bound(&b.compile()).unwrap();
        let orders = prev.log10() - r.bound.log10();
        assert!(
            orders > 100.0,
            "{} ({}): only {orders:.0} orders of magnitude better",
            b.name,
            b.label
        );
    }
}
