//! End-to-end reproduction checks against the paper's printed numbers.
//!
//! These run the full pipeline (parse → lower → simplify → propagate →
//! synthesize) on the motivating examples of §3 and on selected benchmark
//! rows whose published values our encodings reproduce closely. The looser
//! "shape" properties that must hold on *every* row (ExpLinSyn ≤ Hoeffding
//! ≤ Azuma, soundness against simulation) live in `shape_properties.rs`
//! and `simulation_soundness.rs`.


// NOTE: these integration tests deliberately run through the *deprecated*
// session-less `synthesize_*` shims: they are the compatibility surface the
// engine API (PR 5) keeps alive for downstream code, and this file is the
// proof that the shims still compile and behave. New code uses
// `qava::analysis::engine` (see `examples/quickstart.rs`).
#![allow(deprecated)]

use qava::analysis::explinsyn::synthesize_upper_bound;
use qava::analysis::explowsyn::synthesize_lower_bound;
use qava::analysis::hoeffding::{synthesize_reprsm_bound, BoundKind};
use qava::analysis::suite;

/// §3.1: the tortoise-hare race bound is exp(−15.697) ≈ 1.524e-7.
#[test]
fn race_motivating_number() {
    let b = &suite::race_rows()[0];
    let r = synthesize_upper_bound(&b.compile()).unwrap();
    assert!((r.bound.ln() + 15.697).abs() < 0.05, "ln = {}", r.bound.ln());
}

/// §3.3: the unreliable-hardware walk at p = 1e-7 certifies ≥ 0.99998.
#[test]
fn m1dwalk_motivating_number() {
    let b = &suite::m1dwalk_rows()[0];
    let r = synthesize_lower_bound(&b.compile()).unwrap();
    assert!((r.bound.to_f64() - 0.99998).abs() < 1e-5, "got {}", r.bound.to_f64());
}

/// Table 1, Race rows: the §5.2 bounds 1.52e-7 / 2.16e-5 / 8.65e-11.
#[test]
fn race_table_rows_exact() {
    let expected = [1.52e-7, 2.16e-5, 8.65e-11];
    for (b, want) in suite::race_rows().iter().zip(expected) {
        let r = synthesize_upper_bound(&b.compile()).unwrap();
        let got = r.bound.to_f64();
        assert!(
            (got - want).abs() / want < 0.05,
            "{}: expected {want:.3e}, got {got:.3e}",
            b.label
        );
    }
}

/// Table 1, 1DWalk x = 10: the paper prints 7.82e-208 for §5.2; our solver
/// reproduces the mantissa.
#[test]
fn walk1d_first_row_exact() {
    let b = &suite::walk1d_rows()[0];
    let r = synthesize_upper_bound(&b.compile()).unwrap();
    assert!((r.bound.log10() + 207.107).abs() < 0.2, "log10 = {}", r.bound.log10());
}

/// Table 2, Ref rows: 0.998463 / 0.984738 / 0.857443 — reproduced to all
/// printed digits.
#[test]
fn refsearch_rows_exact() {
    let expected = [0.998463, 0.984738, 0.857443];
    for (b, want) in suite::refsearch_rows().iter().zip(expected) {
        let r = synthesize_lower_bound(&b.compile()).unwrap();
        let got = r.bound.to_f64();
        assert!((got - want).abs() < 5e-6, "{}: expected {want}, got {got}", b.label);
    }
}

/// Table 2, Newton rows: within a percent of 0.728492 / 0.534989 /
/// 0.392823 (our gate composition is slightly sharper).
#[test]
fn newton_rows_close() {
    let expected = [0.728492, 0.534989, 0.392823];
    for (b, want) in suite::newton_rows().iter().zip(expected) {
        let r = synthesize_lower_bound(&b.compile()).unwrap();
        let got = r.bound.to_f64();
        assert!((got - want).abs() < 0.05, "{}: expected {want}, got {got}", b.label);
    }
}

/// Robot rows land within a small factor of the paper's 9.64e-6 / 4.78e-7
/// / 1.51e-8 (Fig. 5 is partially elided; DESIGN.md documents the
/// reconstruction).
#[test]
fn robot_rows_close() {
    let expected = [9.64e-6f64, 4.78e-7, 1.51e-8];
    for (b, want) in suite::robot_rows().iter().zip(expected) {
        let r = synthesize_upper_bound(&b.compile()).unwrap();
        let got = r.bound.to_f64();
        assert!(
            (got.ln() - want.ln()).abs() < 1.0,
            "{}: expected ≈{want:.2e}, got {got:.2e}",
            b.label
        );
    }
}

/// RdAdder rows sit within a few percent (in log-space) of the printed
/// 7.43e-2 / 3.54e-5 / 9.17e-11.
#[test]
fn rdadder_rows_close() {
    let expected = [7.43e-2f64, 3.54e-5, 9.17e-11];
    for (b, want) in suite::rdadder_rows().iter().zip(expected) {
        let r = synthesize_upper_bound(&b.compile()).unwrap();
        let got = r.bound.to_f64();
        assert!(
            (got.ln() - want.ln()).abs() < 0.3,
            "{}: expected ≈{want:.2e}, got {got:.2e}",
            b.label
        );
    }
}

/// 2DWalk rows 2 and 3 reproduce the paper's 9.61e-278 and 1.02e-218 to
/// within a few orders out of hundreds.
#[test]
fn walk2d_tail_rows_close() {
    let rows = suite::walk2d_rows();
    for (b, want_log10) in rows[1..].iter().zip([-277.0f64, -218.0]) {
        let r = synthesize_upper_bound(&b.compile()).unwrap();
        assert!(
            (r.bound.log10() - want_log10).abs() < 5.0,
            "{}: expected ~1e{want_log10}, got log10 {}",
            b.label,
            r.bound.log10()
        );
    }
}

/// The Hoeffding algorithm reproduces the shape of the paper's Table 1
/// §5.1 column on the concentration set: never looser than the printed
/// value by more than an order, tighter is welcome (our Ser search and the
/// fused PTS both sharpen the synthesized RepRSM).
#[test]
fn rdwalk_hoeffding_close() {
    let expected = [1.85e-3f64, 1.43e-5, 5.47e-8];
    for (b, want) in suite::rdwalk_rows().iter().zip(expected) {
        let r = synthesize_reprsm_bound(&b.compile(), BoundKind::Hoeffding).unwrap();
        let got = r.bound.to_f64();
        assert!(
            got.log10() <= want.log10() + 1.0,
            "{}: paper printed {want:.2e}, got looser {got:.2e}",
            b.label
        );
    }
}
