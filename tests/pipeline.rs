//! Pipeline integration: language → PTS → simplification → verification
//! oracles. These tests cross crates (`qava-lang`, `qava-pts`,
//! `qava-core::fixpoint`/`verify`) rather than exercising one algorithm.

use qava::analysis::fixpoint;
use qava::pts::{simplify, StepOutcome};
use qava::sim::Simulator;
use std::collections::BTreeMap;

fn compile(src: &str) -> qava::pts::Pts {
    qava::lang::compile(src, &BTreeMap::new()).expect("test program compiles")
}

/// Fig. 1 lowers to the paper's one-live-location PTS after simplification.
#[test]
fn race_lowers_to_paper_shape() {
    let pts = compile(
        r"
        x := 40; y := 0;
        while x <= 99 and y <= 99 invariant x <= 100 and y <= 101 {
            if prob(0.5) { x, y := x + 1, y + 2; } else { x := x + 1; }
        }
        assert x >= 100;
    ",
    );
    assert_eq!(pts.live_locations().count(), 1);
    assert_eq!(pts.transitions().len(), 3, "loop, pass exit, fail exit");
}

/// Simplification preserves the violation probability: simulate the same
/// program with fusion disabled (by building through the raw lowering
/// path, which `compile` always simplifies — so instead compare against
/// the value-iteration oracle on a finite restriction).
#[test]
fn fused_pts_agrees_with_value_iteration() {
    let pts = compile(
        r"
        x := 3;
        while x >= 1 and x <= 9 invariant x >= 0 and x <= 10 {
            if prob(0.5) { x := x + 1; } else { x := x - 1; }
        }
        assert x >= 10;
    ",
    );
    // Fair gambler's ruin from 3: the walk reaches 10 with probability
    // 3/10, so `assert x >= 10` is violated with probability 7/10.
    let oracle = fixpoint::VpfOracle::explore(&pts, 10_000).expect("finite state space");
    let exact = 0.7;
    let (lo, hi) = oracle.interval(20_000);
    assert!(lo <= exact + 1e-9 && exact <= hi + 1e-9, "oracle bracket [{lo}, {hi}]");
    assert!(hi - lo < 1e-6, "value iteration converged");
    let est = Simulator::new(5).estimate_violation(&pts, 100_000, 10_000);
    assert!((est.probability - exact).abs() < 0.01, "simulation got {}", est.probability);
}

/// Guard completeness survives fusion: no reachable state gets stuck.
#[test]
fn no_stuck_states_after_fusion() {
    let sources = [
        r"
        x := 0; t := 0;
        while x <= 9 and t <= 99 invariant x >= -100 and x <= 10 and t >= 0 and t <= 100 {
            switch {
                prob(0.5): { x, t := x + 1, t + 1; }
                prob(0.5): { x, t := x - 1, t + 1; }
            }
        }
        assert x >= 10;
        ",
        r"
        i := 0;
        while i <= 20 invariant i >= 0 and i <= 21 {
            if prob(0.1) { exit; } else { i := i + 1; }
        }
        assert false;
        ",
    ];
    for src in sources {
        let pts = compile(src);
        let mut sim = Simulator::new(99);
        for _ in 0..2_000 {
            assert!(
                sim.run_trial(&pts, 10_000) != qava::sim::TrialOutcome::Stuck,
                "stuck state reached"
            );
        }
    }
}

/// Integer tightening turns the strict exit guards of an integer program
/// into the paper's closed complements, and leaves non-integer programs
/// alone.
#[test]
fn tightening_applies_only_to_integer_programs() {
    let int_pts = compile(
        r"
        x := 0;
        while x <= 9 invariant x <= 10 { x := x + 1; }
        assert x >= 10;
    ",
    );
    for t in int_pts.transitions() {
        for h in t.guard.constraints() {
            assert!(!h.strict, "integer program must have closed guards: {h:?}");
        }
    }

    let real_pts = compile(
        r"
        x := 0;
        while x <= 9.5 invariant x <= 10.5 { x := x + 0.5; }
        assert x >= 10;
    ",
    );
    assert!(
        real_pts
            .transitions()
            .iter()
            .any(|t| t.guard.constraints().iter().any(|h| h.strict)),
        "non-integral program keeps its strict complements"
    );
}

/// `simplify` is idempotent.
#[test]
fn simplify_idempotent() {
    let pts = compile(
        r"
        x := 40; y := 0;
        while x <= 99 and y <= 99 invariant x <= 100 and y <= 101 {
            if prob(0.5) { x, y := x + 1, y + 2; } else { x := x + 1; }
        }
        assert x >= 100;
    ",
    );
    let again = simplify(&pts);
    assert_eq!(again.num_locations(), pts.num_locations());
    assert_eq!(again.transitions().len(), pts.transitions().len());
}

/// The propagated failure invariant is consistent with simulation: every
/// trial that ends in ℓ_f does so at a valuation inside I(ℓ_f).
#[test]
fn failure_invariant_covers_observed_failures() {
    let pts = compile(
        r"
        x := 2; y := 0;
        while x <= 9 and y <= 9 invariant x <= 10 and y <= 11 {
            if prob(0.5) { x, y := x + 1, y + 2; } else { x := x + 1; }
        }
        assert x >= 10;
    ",
    );
    let inv = pts.invariant(pts.failure_location()).clone();
    assert!(!inv.constraints().is_empty(), "propagation produced an ℓ_f invariant");
    use rand::SeedableRng as _;
    let mut rng = rand::rngs::StdRng::seed_from_u64(123);
    let mut failures = 0;
    for _ in 0..20_000 {
        let mut st = pts.initial_state();
        while let StepOutcome::Moved(next) = pts.step(&st, &mut rng) {
            st = next;
        }
        if st.loc == pts.failure_location() {
            failures += 1;
            assert!(
                inv.closure_contains(&st.vals, 1e-9),
                "observed failure state {:?} outside I(ℓ_f) = {inv:?}",
                st.vals
            );
        }
    }
    assert!(failures > 100, "the test program fails often enough to be meaningful");
}
