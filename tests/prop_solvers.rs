//! Cross-solver property tests: the simplex (`qava-lp`) and the barrier
//! method (`qava-convex`) implement different algorithms for overlapping
//! problem classes — on random *linear* programs they must agree.

use proptest::prelude::*;
use qava::convex::{ConvexProblem, ExpSumConstraint, SolverOptions};
use qava::lp::{Cmp, LinExpr, LpBuilder, LpError};

/// A random bounded LP: minimize c·x over a box [0, B]^n cut by extra
/// halfspaces through its interior.
#[derive(Debug, Clone)]
struct RandomLp {
    n: usize,
    box_hi: f64,
    costs: Vec<f64>,
    cuts: Vec<(Vec<f64>, f64)>,
}

fn random_lp() -> impl Strategy<Value = RandomLp> {
    (2usize..5, 1.0f64..8.0).prop_flat_map(|(n, box_hi)| {
        let costs = proptest::collection::vec(-3.0f64..3.0, n);
        let cut = (proptest::collection::vec(-2.0f64..2.0, n), 0.5f64..6.0);
        let cuts = proptest::collection::vec(cut, 0..3);
        (Just(n), Just(box_hi), costs, cuts).prop_map(|(n, box_hi, costs, cuts)| RandomLp {
            n,
            box_hi,
            costs,
            cuts,
        })
    })
}

fn solve_with_simplex(lp: &RandomLp) -> Result<f64, LpError> {
    let mut b = LpBuilder::new();
    let xs: Vec<_> = (0..lp.n).map(|i| b.add_var_nonneg(format!("x{i}"))).collect();
    for &x in &xs {
        b.constrain(LinExpr::var(x, 1.0), Cmp::Le, lp.box_hi);
    }
    for (row, rhs) in &lp.cuts {
        let mut e = LinExpr::new();
        for (x, &c) in xs.iter().zip(row) {
            e = e.term(*x, c);
        }
        b.constrain(e, Cmp::Le, *rhs);
    }
    let mut obj = LinExpr::new();
    for (x, &c) in xs.iter().zip(&lp.costs) {
        obj = obj.term(*x, c);
    }
    b.minimize(obj);
    b.solve().map(|s| s.objective)
}

fn solve_with_barrier(lp: &RandomLp) -> Result<f64, qava::convex::ConvexError> {
    let mut p = ConvexProblem::new(lp.n);
    p.set_objective(lp.costs.clone());
    for i in 0..lp.n {
        let mut up = vec![0.0; lp.n];
        up[i] = 1.0;
        p.add_constraint(ExpSumConstraint::linear(up, lp.box_hi));
        let mut down = vec![0.0; lp.n];
        down[i] = -1.0;
        p.add_constraint(ExpSumConstraint::linear(down, 0.0));
    }
    for (row, rhs) in &lp.cuts {
        p.add_constraint(ExpSumConstraint::linear(row.clone(), *rhs));
    }
    let opts = SolverOptions { tol: 1e-10, ..SolverOptions::default() };
    p.solve(&opts).map(|s| s.objective)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On feasible bounded LPs the two solvers agree to interior-point
    /// accuracy. (The box always contains 0, so feasibility only fails if
    /// a cut excludes the whole box — the simplex detects that; we only
    /// compare when both succeed.)
    #[test]
    fn simplex_and_barrier_agree(lp in random_lp()) {
        let s = solve_with_simplex(&lp);
        let b = solve_with_barrier(&lp);
        if let (Ok(s), Ok(b)) = (s, b) {
            // Interior-point accuracy on these scales is ~1e-6 absolute.
            prop_assert!(
                (s - b).abs() < 1e-4 * (1.0 + s.abs()),
                "simplex {s} vs barrier {b}"
            );
        }
    }

    /// The simplex never reports an objective better than a feasible point
    /// exhibits (lower-bound sanity via the barrier's strictly feasible
    /// iterate).
    #[test]
    fn simplex_objective_is_a_true_minimum(lp in random_lp()) {
        if let Ok(s) = solve_with_simplex(&lp) {
            // The origin is always feasible with objective 0.
            prop_assert!(s <= 1e-9, "minimizing over a box containing 0 can't exceed 0, got {s}");
        }
    }
}
