#![warn(missing_docs)]

//! # qava — Quantitative Assertion-Violation Analysis
//!
//! A Rust implementation of *“Quantitative Analysis of Assertion Violations
//! in Probabilistic Programs”* (Wang, Sun, Fu, Chatterjee, Goharshady —
//! PLDI 2021): automated synthesis of **upper and lower bounds** on the
//! probability that a probabilistic program violates an assertion.
//!
//! The facade re-exports every workspace crate under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`lang`] | `qava-lang` | surface language: parser, lowering to PTSs |
//! | [`pts`] | `qava-pts` | probabilistic transition systems, simplification |
//! | [`analysis`] | `qava-core` | the paper's three synthesis algorithms |
//! | [`sim`] | `qava-sim` | Monte-Carlo estimation of violation probability |
//! | [`polyhedra`] | `qava-polyhedra` | double description, Minkowski decomposition |
//! | [`lp`] | `qava-lp` | sparse revised simplex, Farkas compiler |
//! | [`convex`] | `qava-convex` | log-barrier solver for exp-sum programs |
//! | [`linalg`] | `qava-linalg` | dense matrices, least squares, nullspaces |
//!
//! ## Quick start
//!
//! Bound the probability that the hare beats the tortoise (§3.1, Fig. 1):
//!
//! ```
//! use std::collections::BTreeMap;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = r"
//!     x := 40; y := 0;
//!     while x <= 99 and y <= 99 invariant x <= 100 and y <= 101 {
//!         if prob(0.5) { x, y := x + 1, y + 2; } else { x := x + 1; }
//!     }
//!     assert x >= 100;
//! ";
//! use qava::analysis::engine::{AnalysisRequest, EngineRegistry};
//!
//! let pts = qava::lang::compile(program, &BTreeMap::new())?;
//! // Every synthesis algorithm is a `BoundEngine` behind one registry.
//! let registry = EngineRegistry::with_builtins();
//! let upper = registry
//!     .run_engine("explinsyn", &AnalysisRequest::upper(&pts), Default::default())
//!     .expect("built-in engine")
//!     .outcome?;
//! // The paper derives ≈ exp(−15.697) ≈ 1.52e-7 for this program.
//! assert!((upper.bound.ln() + 15.697).abs() < 0.05);
//! # Ok(())
//! # }
//! ```
//!
//! ## The three algorithms
//!
//! * [`analysis::hoeffding`] — §5.1: sound, polynomial-time upper bounds via
//!   repulsing ranking supermartingales and Hoeffding's lemma, with the
//!   Azuma baseline of POPL'17 for comparison (Remark 2).
//! * [`analysis::explinsyn`] — §5.2: sound **and complete** upper bounds
//!   `exp(a·v + b)` via Minkowski decomposition, a dedicated quantifier
//!   elimination, and convex programming (Theorem 5.5).
//! * [`analysis::explowsyn`] — §6: sound, polynomial-time **lower** bounds
//!   via Jensen's inequality and linear programming, valid under
//!   almost-sure termination (certifiable with [`analysis::rsm`]).
//!
//! The theory behind all three is the fixed-point characterization of the
//! violation probability function (§4): pre fixed-points of the probability
//! transformer upper-bound `vpf`, and — under almost-sure termination —
//! bounded post fixed-points lower-bound it. [`analysis::fixpoint`]
//! implements the lattice and transformer directly as an executable
//! reference for finite restrictions.

pub use qava_convex as convex;
pub use qava_core as analysis;
pub use qava_lang as lang;
pub use qava_linalg as linalg;
pub use qava_lp as lp;
pub use qava_polyhedra as polyhedra;
pub use qava_pts as pts;
pub use qava_sim as sim;
