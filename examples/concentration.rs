//! Concentration bounds on termination time (§3.2): how unlikely is it
//! that a probabilistic loop is still running after n steps?
//!
//! The paper's modeling recipe: add a step counter `t`, assert `t ≤ n` at
//! the exit, and bound the assertion violation probability. This example
//! sweeps `n` for the asymmetric random walk of Fig. 2 and compares the
//! complete algorithm (§5.2) against the Hoeffding/RepRSM one (§5.1) and
//! the Azuma baseline the paper improves on (Remark 2).
//!
//! ```sh
//! cargo run --release --example concentration
//! ```

use qava::analysis::hoeffding::{synthesize_reprsm_bound_in, BoundKind, DEFAULT_SER_ITERATIONS};
use qava::lp::LpSolver;
use std::collections::BTreeMap;

const WALK: &str = r"
    param n = 500;
    x := 0; t := 0;
    while x <= 99 and t <= n
        invariant x >= -(n + 1) and x <= 100 and t >= 0 and t <= n + 1 {
        switch {
            prob(0.75): { x, t := x + 1, t + 1; }
            prob(0.25): { x, t := x - 1, t + 1; }
        }
    }
    assert x >= 100;
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("P[walk still running after n steps] (drift +1/2, target 100)\n");
    println!(
        "{:>6} {:>14} {:>14} {:>14}",
        "n", "ExpLinSyn §5.2", "Hoeffding §5.1", "Azuma (POPL'17)"
    );

    for n in [300, 400, 500, 600, 800] {
        let mut params = BTreeMap::new();
        params.insert("n".to_string(), f64::from(n));
        let pts = qava::lang::compile(WALK, &params)?;
        // One solver session per row: the three analyses share its
        // warm-start cache, as the synthesis layers do internally.
        let mut solver = LpSolver::new();

        let complete = qava::analysis::explinsyn::synthesize_upper_bound_in(&pts, &mut solver)?;
        let hoeffding = synthesize_reprsm_bound_in(&pts, BoundKind::Hoeffding, DEFAULT_SER_ITERATIONS, &mut solver)?;
        let azuma = synthesize_reprsm_bound_in(&pts, BoundKind::Azuma, DEFAULT_SER_ITERATIONS, &mut solver)?;

        println!(
            "{n:>6} {:>14} {:>14} {:>14}",
            complete.bound.to_string(),
            hoeffding.bound.to_string(),
            azuma.bound.to_string()
        );

        // Remark 2 and Theorem 5.5, checked numerically on every row: the
        // Hoeffding bound beats Azuma, the complete algorithm beats both.
        assert!(complete.bound.ln() <= hoeffding.bound.ln() + 1e-9);
        assert!(hoeffding.bound.ln() <= azuma.bound.ln() + 1e-9);
    }

    // §3.2 of the paper: the n = 500 bound is ≈ exp(−27.181) ≈ 1.57e-12.
    // Ours lands slightly *below* (exp(−27.53)): the paper's constraint
    // (II) demands f ≥ 1 on x* ≤ 100 ∧ t* ≥ 501, which includes the
    // passing corner x* = 100, while our fused exit guards only constrain
    // the genuinely violating region x* ≤ 99.
    let mut params = BTreeMap::new();
    params.insert("n".to_string(), 500.0);
    let pts = qava::lang::compile(WALK, &params)?;
    let mut solver = LpSolver::new();
    let b = qava::analysis::explinsyn::synthesize_upper_bound_in(&pts, &mut solver)?;
    assert!(
        (b.bound.ln() + 27.181).abs() < 0.5 && b.bound.ln() <= -27.181 + 1e-6,
        "expected the paper's exp(−27.181) or tighter, got ln = {}",
        b.bound.ln()
    );
    println!("\nn = 500 matches §3.2 of the paper (≈ exp(−27.181), ours exp({:.3})) ✓", b.bound.ln());
    Ok(())
}
