//! The tortoise-hare race of §3.1 (Fig. 1): how big a head start does the
//! tortoise need for a target winning probability?
//!
//! The example sweeps the head start, reproduces the paper's bound
//! `≈ 1.52e-7` at 40 units, and prints the synthesized exponential
//! template in the style of the paper's symbolic Table 4.
//!
//! ```sh
//! cargo run --release --example tortoise_hare
//! ```

use qava::lp::LpSolver;
use std::collections::BTreeMap;

const RACE: &str = r"
    param start = 40;
    x := start; y := 0;
    while x <= 99 and y <= 99 invariant x <= 100 and y <= 101 {
        if prob(0.5) { x, y := x + 1, y + 2; } else { x := x + 1; }
    }
    assert x >= 100;
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("tortoise-hare race: P[hare wins] as a function of the head start\n");
    println!("{:>10} {:>14} {:>34}", "head start", "upper bound", "template (loop head)");

    let mut at_40 = None;
    for start in [10, 20, 30, 40, 50, 60] {
        let mut params = BTreeMap::new();
        params.insert("start".to_string(), f64::from(start));
        let pts = qava::lang::compile(RACE, &params)?;
        let r = qava::analysis::explinsyn::synthesize_upper_bound_in(&pts, &mut LpSolver::new())?;
        if r.floored {
            // The objective is unbounded below: no path violates at all.
            // (With a 50-unit head start the hare needs 50 double-jumps in
            // under 50 rounds — impossible, so the probability is 0.)
            println!("{start:>10} {:>14} {:>34}", "≈ 0 (floored)", "—");
        } else {
            println!(
                "{start:>10} {:>14} {:>34}",
                r.bound.to_string(),
                format!("exp({})", r.template.exponent_string(0)),
            );
        }
        if start == 40 {
            at_40 = Some(r.bound);
        }
    }

    // §3.1 derives exp(−15.697) ≈ 1.52e-7 for the 40-unit head start.
    let b = at_40.expect("the sweep included 40");
    assert!(
        (b.ln() + 15.697).abs() < 0.05,
        "expected the paper's exp(−15.697), got ln = {}",
        b.ln()
    );
    println!("\nthe 40-unit row matches §3.1 of the paper (≈ exp(−15.697)) ✓");

    // The bound is exponential in the head start: each extra unit of head
    // start multiplies the hare's winning chance by roughly the same factor.
    Ok(())
}
