//! A tour of the `qava` surface language and the PTS each construct lowers
//! to: parameters, sampling declarations, probabilistic and deterministic
//! branching, switches, loops with invariants, asserts and exits.
//!
//! ```sh
//! cargo run --release --example language_tour
//! ```

use std::collections::BTreeMap;

fn show(title: &str, src: &str, params: &BTreeMap<String, f64>) {
    println!("── {title} ──");
    match qava::lang::compile(src, params) {
        Err(e) => println!("  compile error: {e}"),
        Ok(pts) => {
            let init = pts.initial_state();
            println!(
                "  {} vars, {} live locations, {} transitions; starts at `{}` with {:?}",
                pts.num_vars(),
                pts.live_locations().count(),
                pts.transitions().len(),
                pts.loc_name(init.loc),
                init.vals,
            );
            let mut sim = qava::sim::Simulator::new(7);
            let est = sim.estimate_violation(&pts, 50_000, 100_000);
            println!("  empirical violation probability ≈ {:.4}", est.probability);
        }
    }
    println!();
}

fn main() {
    // Simultaneous assignment keeps updates affine and exact; straight-line
    // blocks fuse into a single transition fork.
    show(
        "coin flip (probabilistic branch + assert)",
        r"
            x := 0;
            if prob(0.3) { x := 1; } else { x := 2; }
            assert x >= 2;
        ",
        &BTreeMap::new(),
    );

    // `switch` is the paper's n-ary probabilistic choice.
    show(
        "lazy random walk (switch + loop invariant)",
        r"
            x := 5;
            while x >= 1 and x <= 9 invariant x >= 0 and x <= 10 {
                switch {
                    prob(0.25): { x := x + 1; }
                    prob(0.25): { x := x - 1; }
                    prob(0.5):  { skip; }
                }
            }
            assert x <= 0;
        ",
        &BTreeMap::new(),
    );

    // `sample` draws fresh randomness at every syntactic occurrence; the
    // uniform distribution exercises the MGF path of the convex solver.
    show(
        "continuous noise (sample declaration)",
        r"
            sample u ~ uniform(-1, 2);
            x := 0; t := 0;
            while x <= 49 and t <= 199
                invariant x <= 52 and t >= 0 and t <= 200 {
                x, t := x + u, t + 1;
            }
            assert x >= 50;
        ",
        &BTreeMap::new(),
    );

    // Parameters are compile-time constants, overridable per run — this is
    // how the benchmark tables sweep their rows.
    let mut params = BTreeMap::new();
    params.insert("bias".to_string(), 0.9);
    show(
        "parameterized program (param + override)",
        r"
            param bias = 0.5;
            wins := 0; round := 0;
            while round <= 9 invariant round >= 0 and round <= 10 and wins >= 0 and wins <= round {
                if prob(bias) { wins, round := wins + 1, round + 1; }
                else { round := round + 1; }
            }
            assert wins >= 8;
        ",
        &params,
    );

    // `exit` jumps straight to silent termination — with `assert false` at
    // the end this is the paper's unreliable-hardware encoding (§3.3).
    show(
        "early exit (hardware-fault encoding)",
        r"
            param p = 0.01;
            i := 0;
            while i <= 99 invariant i >= 0 and i <= 100 {
                if prob(p) { exit; } else { i := i + 1; }
            }
            assert false;
        ",
        &BTreeMap::new(),
    );

    // Diagnostics carry source positions.
    show(
        "a type of error: assigning to a parameter",
        r"
            param n = 3;
            n := 4;
            assert false;
        ",
        &BTreeMap::new(),
    );
}
