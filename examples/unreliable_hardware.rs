//! Reliability analysis on unreliable hardware (§3.3, Fig. 3): lower-bound
//! the probability that a computation finishes without a hardware fault.
//!
//! The trick from the paper: give the program the assertion `assert false`
//! at its exit, so the assertion is violated *iff* the run completes —
//! a lower bound on the violation probability is then a lower bound on the
//! success probability of the computation.
//!
//! ```sh
//! cargo run --release --example unreliable_hardware
//! ```

use qava::lp::LpSolver;
use std::collections::BTreeMap;

const WALK_ON_FAULTY_CPU: &str = r"
    param p = 1e-7;
    x := 1;
    while x <= 99 invariant x <= 100 {
        switch {
            prob(p): { exit; }
            prob(0.75 * (1 - p)): { x := x + 1; }
            prob(0.25 * (1 - p)): { x := x - 1; }
        }
    }
    assert false;
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("random walk on a CPU that faults with probability p per step\n");
    println!("{:>10} {:>22} {:>16}", "fault p", "P[success] ≥", "1 − bound");

    for p in [1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3] {
        let mut params = BTreeMap::new();
        params.insert("p".to_string(), p);
        let pts = qava::lang::compile(WALK_ON_FAULTY_CPU, &params)?;

        // Lower bounds need almost-sure termination (Theorem 4.4); the
        // fault exit plus the walk's positive drift make this certifiable
        // with a linear ranking supermartingale.
        qava::analysis::rsm::prove_almost_sure_termination(&pts)?;

        let r = qava::analysis::explowsyn::synthesize_lower_bound_in(&pts, &mut LpSolver::new())?;
        let success = r.bound.to_f64();
        println!("{p:>10.0e} {success:>22.9} {:>16.3e}", 1.0 - success);
    }

    println!();
    println!("§3.3 of the paper reports ≈ 0.99998 for p = 1e-7; the synthesized");
    println!("template there is exp(a·x + b) with a ≈ 2e-7, b ≈ −2e-5 (Table 5).");

    let pts = qava::lang::compile(WALK_ON_FAULTY_CPU, &BTreeMap::new())?;
    let r = qava::analysis::explowsyn::synthesize_lower_bound_in(&pts, &mut LpSolver::new())?;
    assert!((r.bound.to_f64() - 0.99998).abs() < 1e-5);
    println!("reproduced ✓ (got {:.6})", r.bound.to_f64());
    Ok(())
}
