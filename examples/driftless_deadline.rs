//! Beyond the paper's affine templates: quadratic exponents (Remark 3).
//!
//! A symmetric random walk must hit either boundary of [−4, 4] within a
//! deadline. There is **no drift**, so no affine repulsing supermartingale
//! exists — every affine η would have to decrease in expectation while
//! remaining non-negative at the late deadline failure. The classical
//! certificate is quadratic: `t − k·x²` decreases in expectation because
//! `E[Δ(x²)] = 1` per step. `qava` synthesizes it automatically through
//! Handelman's theorem (the LP-flavoured Positivstellensatz standing in
//! for the SDP route the paper sketches).
//!
//! ```sh
//! cargo run --release --example driftless_deadline
//! ```

use qava::analysis::hoeffding::{synthesize_reprsm_bound_in, BoundKind, RepRsmError, DEFAULT_SER_ITERATIONS};
use qava::lp::LpSolver;
use qava::analysis::polyrsm::synthesize_quadratic_bound_in;
use std::collections::BTreeMap;

const WALK: &str = r"
    param deadline = 60;
    x := 0; t := 0;
    while x >= -4 and x <= 4 and t <= deadline
        invariant x >= -5 and x <= 5 and t >= 0 and t <= deadline + 1 {
        if prob(0.5) { x, t := x + 1, t + 1; } else { x, t := x - 1, t + 1; }
    }
    assert t <= deadline;
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("P[driftless walk misses its boundary deadline]\n");
    println!(
        "{:>9} {:>16} {:>16} {:>12}",
        "deadline", "affine (§5.1)", "quadratic (R3)", "empirical"
    );

    for deadline in [40, 60, 90, 140] {
        let mut params = BTreeMap::new();
        params.insert("deadline".to_string(), f64::from(deadline));
        let pts = qava::lang::compile(WALK, &params)?;

        let affine = match synthesize_reprsm_bound_in(&pts, BoundKind::Hoeffding, DEFAULT_SER_ITERATIONS, &mut LpSolver::new()) {
            Err(RepRsmError::NoRepRsm) => "none exists".to_string(),
            Ok(r) if r.bound.ln() > -1e-6 => "trivial (1)".to_string(),
            Ok(r) => r.bound.to_string(),
            Err(e) => return Err(e.into()),
        };
        let quad = synthesize_quadratic_bound_in(&pts, BoundKind::Hoeffding, 40, &mut LpSolver::new())?;
        let est = qava::sim::Simulator::new(1).estimate_violation(&pts, 40_000, 10_000);

        println!(
            "{deadline:>9} {affine:>16} {:>16} {:>12.4}",
            quad.bound.to_string(),
            est.probability
        );
        assert!(
            quad.bound.to_f64() >= est.lower_ci(),
            "certified bound must dominate the estimate"
        );
        assert!(quad.bound.ln() < -1e-4, "and must be nontrivial");
    }

    println!("\nthe affine class certifies nothing here; quadratic templates do ✓");
    Ok(())
}
