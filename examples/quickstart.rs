//! Quickstart: compile a probabilistic program, bound its assertion
//! violation probability from both sides, and cross-check the bounds with
//! Monte-Carlo simulation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use qava::analysis::engine::{AnalysisRequest, EngineRegistry};
use qava::lp::BackendChoice;
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An asymmetric random walk (Fig. 2 of the paper): move forward with
    // probability 3/4, backward with 1/4; the assertion checks the walk
    // finishes within 500 steps.
    let program = r"
        x := 0; t := 0;
        while x <= 99 and t <= 500
            invariant x >= -501 and x <= 100 and t >= 0 and t <= 501 {
            switch {
                prob(0.75): { x, t := x + 1, t + 1; }
                prob(0.25): { x, t := x - 1, t + 1; }
            }
        }
        assert x >= 100;
    ";

    // 1. Compile: parse, lower to a PTS, simplify, propagate invariants.
    let pts = qava::lang::compile(program, &BTreeMap::new())?;
    println!(
        "compiled: {} variables, {} live locations, {} transitions",
        pts.num_vars(),
        pts.live_locations().count(),
        pts.transitions().len()
    );

    // 2. Every synthesis algorithm is a `BoundEngine` behind one
    //    registry; ask it for the complete upper-bound engine of §5.2.
    let registry = EngineRegistry::with_builtins();
    let request = AnalysisRequest::upper(&pts);
    let upper = registry
        .run_engine("explinsyn", &request, BackendChoice::default())
        .expect("built-in engine")
        .outcome?;
    println!("upper bound (ExpLinSyn, §5.2): {}", upper.bound);

    // 3. Same request, the polynomial-time engine of §5.1.
    let hoeffding = registry
        .run_engine("hoeffding-linear", &request, BackendChoice::default())
        .expect("built-in engine")
        .outcome?;
    println!("upper bound (Hoeffding, §5.1): {}", hoeffding.bound);

    // 4. Monte-Carlo cross-check: the certified bound must dominate the
    //    empirical estimate.
    let mut sim = qava::sim::Simulator::new(42);
    let est = sim.estimate_violation(&pts, 200_000, 10_000);
    println!(
        "empirical violation probability: {:.2e} (99% CI ± {:.2e})",
        est.probability, est.ci_half_width
    );
    assert!(est.lower_ci() <= upper.bound.to_f64());
    println!("certified upper bound dominates the empirical estimate ✓\n");

    // 5. Lower bounds (§6) need every guard region to keep some path to
    //    ℓ_f alive — exponential templates are positive, so a region that
    //    terminates silently with probability 1 admits none. That's why the
    //    paper's lower-bound benchmarks use the `assert false` reliability
    //    encoding of §3.3; here it asks: does the walk complete without a
    //    once-in-1e-6 hardware fault?
    let faulty = r"
        x := 0;
        while x <= 99 invariant x <= 100 {
            switch {
                prob(1e-6): { exit; }
                prob(0.75 * (1 - 1e-6)): { x := x + 1; }
                prob(0.25 * (1 - 1e-6)): { x := x - 1; }
            }
        }
        assert false;
    ";
    let pts = qava::lang::compile(faulty, &BTreeMap::new())?;
    // Sound only under almost-sure termination — certify it first.
    let cert = qava::analysis::rsm::prove_almost_sure_termination(&pts)?;
    println!("a.s. termination certified; expected steps ≤ {:.1}", cert.initial_rank);
    let lower = registry
        .run_engine("explowsyn", &AnalysisRequest::lower(&pts), BackendChoice::default())
        .expect("built-in engine")
        .outcome?;
    println!("lower bound on fault-free completion (ExpLowSyn, §6): {:.6}", lower.bound.to_f64());
    let est = sim.estimate_violation(&pts, 200_000, 10_000);
    assert!(lower.bound.to_f64() <= est.upper_ci());
    println!(
        "empirical completion rate {:.6} ≥ certified lower bound ✓",
        est.probability
    );
    Ok(())
}
